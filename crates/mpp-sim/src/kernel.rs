//! The sequentialized direct-execution kernel.
//!
//! One OS thread per rank runs the user program; every communication call
//! traps into this kernel, which advances virtual time deterministically
//! (see crate docs for the scheduling rule and timing model).

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;

use mpp_model::{LibraryKind, Machine, Time};

use crate::mailbox::{Mailbox, MsgRec};
use crate::network::NetworkState;
use crate::payload::Payload;
use crate::record::{ScheduleEvent, ScheduleLog};
use crate::trace::MsgTrace;
use crate::Tag;

/// Kernel configuration knobs.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Library flavour scaling the α costs (NX vs MPI on the Paragon).
    pub lib: LibraryKind,
    /// Stack size for rank threads. Algorithms here recurse at most
    /// `O(log p)` deep, so the default 256 KiB is plenty even at p=1024.
    pub stack_size: usize,
    /// Record a [`MsgTrace`] for every message (see
    /// [`SimOutcome::trace`]).
    pub trace: bool,
    /// Capture the symbolic communication schedule into this log (see
    /// [`crate::record`]). `None` disables recording.
    pub recorder: Option<ScheduleLog>,
    /// Enforce schedule sanity at runtime: every receive match must be
    /// unambiguous (no second in-flight message with the same
    /// `(src, tag)`), and no rank may finish with undelivered messages
    /// in its mailbox. These are the same checks `stp-analyzer` runs
    /// statically; enabling them turns schedule bugs into immediate
    /// panics at the offending operation.
    pub strict: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            lib: LibraryKind::Nx,
            stack_size: 256 * 1024,
            trace: false,
            recorder: None,
            strict: false,
        }
    }
}

/// A delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sending rank.
    pub src: usize,
    /// Message tag.
    pub tag: Tag,
    /// Payload (shared-ownership rope; delivery never copies bytes).
    pub data: Payload,
    /// Virtual time the message reached the receiver's node.
    pub arrival: Time,
    /// How long the receiver sat blocked waiting for it (0 if it was
    /// already in the mailbox).
    pub waited_ns: Time,
}

/// Diagnostic snapshot produced when the simulation deadlocks
/// (every live rank blocked in `recv` with no matching message).
#[derive(Debug, Clone)]
pub struct DeadlockInfo {
    /// Per-rank one-line state descriptions.
    pub states: Vec<String>,
}

// ---------------------------------------------------------------------
// Trap / grant protocol between rank threads and the kernel.
// ---------------------------------------------------------------------

enum Trap {
    Send {
        dst: usize,
        tag: Tag,
        data: Payload,
    },
    Recv {
        src: Option<usize>,
        tag: Option<Tag>,
    },
    ComputeNs {
        ns: Time,
    },
    Memcpy {
        bytes: usize,
    },
    Barrier,
    /// Iteration boundary marker — only issued while schedule recording
    /// is active; costs zero virtual time.
    IterMark,
    Finished,
}

enum Grant {
    Sent { clock: Time },
    Received { env: Envelope, clock: Time },
    Done { clock: Time },
}

/// The per-rank handle user programs communicate through.
///
/// Obtained only inside [`simulate`]; every method traps into the kernel
/// and advances this rank's virtual clock.
pub struct RankCtx {
    rank: usize,
    size: usize,
    clock: Time,
    recording: bool,
    to_kernel: Sender<Trap>,
    from_kernel: Receiver<Grant>,
}

impl RankCtx {
    /// This rank's id, `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the simulation.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// This rank's virtual clock as of its last kernel interaction (ns).
    #[inline]
    pub fn clock(&self) -> Time {
        self.clock
    }

    fn call(&mut self, trap: Trap) -> Grant {
        self.to_kernel
            .send(trap)
            .expect("simulation kernel terminated");
        let grant = self
            .from_kernel
            .recv()
            .expect("simulation kernel terminated (deadlock or rank panic elsewhere)");
        self.clock = match &grant {
            Grant::Sent { clock } | Grant::Done { clock } | Grant::Received { clock, .. } => *clock,
        };
        grant
    }

    /// Asynchronous send: returns after the software startup cost; the
    /// transfer itself proceeds in the network model.
    ///
    /// Copies `data` once into shared storage. Prefer
    /// [`send_payload`](Self::send_payload) when the payload already
    /// lives in a [`Payload`] — that path moves pointers, not bytes.
    pub fn send(&mut self, dst: usize, tag: Tag, data: &[u8]) {
        self.send_payload(dst, tag, Payload::from_slice(data));
    }

    /// Asynchronous send of a shared-ownership payload. The virtual-time
    /// cost model is identical to [`send`](Self::send) (it depends only
    /// on the byte length); no host-side copy is made.
    pub fn send_payload(&mut self, dst: usize, tag: Tag, data: impl Into<Payload>) {
        assert!(dst < self.size, "send to rank {dst} out of range");
        match self.call(Trap::Send {
            dst,
            tag,
            data: data.into(),
        }) {
            Grant::Sent { .. } => {}
            _ => unreachable!("kernel protocol violation"),
        }
    }

    /// Blocking receive. `src`/`tag` of `None` match anything; among
    /// matching messages the earliest-arriving is delivered.
    pub fn recv(&mut self, src: Option<usize>, tag: Option<Tag>) -> Envelope {
        match self.call(Trap::Recv { src, tag }) {
            Grant::Received { env, .. } => env,
            _ => unreachable!("kernel protocol violation"),
        }
    }

    /// Charge local computation time directly (ns).
    pub fn compute_ns(&mut self, ns: Time) {
        match self.call(Trap::ComputeNs { ns }) {
            Grant::Done { .. } => {}
            _ => unreachable!("kernel protocol violation"),
        }
    }

    /// Charge the machine's memory-copy cost for `bytes` bytes — used by
    /// algorithms when *combining* messages, which the paper identifies as
    /// a first-order cost on the T3D.
    pub fn charge_memcpy(&mut self, bytes: usize) {
        match self.call(Trap::Memcpy { bytes }) {
            Grant::Done { .. } => {}
            _ => unreachable!("kernel protocol violation"),
        }
    }

    /// Global barrier, modelled as a dissemination barrier:
    /// `⌈log₂ p⌉ · (α_send + α_recv)` after the last rank arrives.
    pub fn barrier(&mut self) {
        match self.call(Trap::Barrier) {
            Grant::Done { .. } => {}
            _ => unreachable!("kernel protocol violation"),
        }
    }

    /// Mark an iteration boundary for the schedule recorder (zero
    /// virtual-time cost). A no-op unless the run records a schedule, so
    /// the runtime backends can call it unconditionally from
    /// `next_iteration`.
    pub fn iter_mark(&mut self) {
        if !self.recording {
            return;
        }
        match self.call(Trap::IterMark) {
            Grant::Done { .. } => {}
            _ => unreachable!("kernel protocol violation"),
        }
    }
}

/// Result of a completed simulation.
#[derive(Debug)]
pub struct SimOutcome<R> {
    /// Per-rank return values of the program.
    pub results: Vec<R>,
    /// Per-rank virtual finish times (ns).
    pub finish_ns: Vec<Time>,
    /// `max(finish_ns)` — the figure-of-merit reported in the paper (ns).
    pub makespan_ns: Time,
    /// Number of transfers that stalled on a busy link or port.
    pub contention_events: u64,
    /// Total stall time across all transfers (ns).
    pub contention_ns: Time,
    /// Per-message records (empty unless [`SimConfig::trace`] is set).
    pub trace: Vec<MsgTrace>,
}

impl<R> SimOutcome<R> {
    /// Makespan in milliseconds (the unit the paper plots).
    pub fn makespan_ms(&self) -> f64 {
        self.makespan_ns as f64 / 1e6
    }
}

/// Run `program` on every rank of `machine` with default config (NX).
///
/// ```
/// use mpp_model::Machine;
/// let machine = Machine::paragon(1, 2);
/// let out = mpp_sim::simulate(&machine, |ctx| {
///     if ctx.rank() == 0 {
///         ctx.send(1, 0, b"ping");
///         0
///     } else {
///         ctx.recv(Some(0), Some(0)).data.len()
///     }
/// });
/// assert_eq!(out.results, vec![0, 4]);
/// assert!(out.makespan_ns > 0);
/// ```
pub fn simulate<R, F>(machine: &Machine, program: F) -> SimOutcome<R>
where
    R: Send,
    F: Fn(&mut RankCtx) -> R + Sync,
{
    simulate_with(machine, &SimConfig::default(), program)
}

/// Run `program` on every rank of `machine` under the given config.
///
/// # Panics
///
/// Panics with a [`DeadlockInfo`] dump if every live rank is blocked in
/// `recv` with no matching message in flight, or if a rank thread panics.
pub fn simulate_with<R, F>(machine: &Machine, config: &SimConfig, program: F) -> SimOutcome<R>
where
    R: Send,
    F: Fn(&mut RankCtx) -> R + Sync,
{
    let p = machine.p();
    assert!(p > 0);

    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..p).map(|_| None).collect());
    let mut finish_ns = vec![0; p];
    let (contention_events, contention_ns);
    let trace;

    {
        // Channel plumbing: one trap channel and one grant channel per rank.
        let mut trap_rxs = Vec::with_capacity(p);
        let mut grant_txs = Vec::with_capacity(p);
        let mut rank_ends = Vec::with_capacity(p);
        for rank in 0..p {
            let (trap_tx, trap_rx) = channel::<Trap>();
            let (grant_tx, grant_rx) = channel::<Grant>();
            trap_rxs.push(trap_rx);
            grant_txs.push(Some(grant_tx));
            rank_ends.push(Some((rank, trap_tx, grant_rx)));
        }

        let program = &program;
        let results = &results;
        let kernel_out = std::thread::scope(|scope| {
            for end in rank_ends.iter_mut() {
                let (rank, trap_tx, grant_rx) = end.take().unwrap();
                let recording = config.recorder.is_some();
                let builder = std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .stack_size(config.stack_size);
                builder
                    .spawn_scoped(scope, move || {
                        let mut ctx = RankCtx {
                            rank,
                            size: p,
                            clock: 0,
                            recording,
                            to_kernel: trap_tx,
                            from_kernel: grant_rx,
                        };
                        let out = program(&mut ctx);
                        results.lock().unwrap()[rank] = Some(out);
                        // Ignore send failure: the kernel may already have
                        // aborted on another rank's panic.
                        let _ = ctx.to_kernel.send(Trap::Finished);
                    })
                    .expect("failed to spawn rank thread");
            }

            run_kernel(machine, config, &trap_rxs, &mut grant_txs, &mut finish_ns)
        });
        contention_events = kernel_out.0;
        contention_ns = kernel_out.1;
        trace = kernel_out.2;
    }

    let results: Vec<R> = results
        .into_inner()
        .unwrap()
        .into_iter()
        .enumerate()
        .map(|(rank, r)| r.unwrap_or_else(|| panic!("rank {rank} produced no result")))
        .collect();
    let makespan_ns = finish_ns.iter().copied().max().unwrap_or(0);
    SimOutcome {
        results,
        finish_ns,
        makespan_ns,
        contention_events,
        contention_ns,
        trace,
    }
}

struct RankState {
    clock: Time,
    pending: Option<Trap>,
    done: bool,
    in_barrier: bool,
    blocked_recv: bool,
}

/// The kernel proper. Runs on the calling thread while rank threads wait.
/// Returns `(contention_events, contention_ns, trace)`.
fn run_kernel(
    machine: &Machine,
    config: &SimConfig,
    trap_rxs: &[Receiver<Trap>],
    grant_txs: &mut [Option<Sender<Grant>>],
    finish_ns: &mut [Time],
) -> (u64, Time, Vec<MsgTrace>) {
    let p = machine.p();
    let params = &machine.params;
    let lib = config.lib;
    let alpha_send = params.alpha_send(lib);
    let alpha_recv = params.alpha_recv(lib);

    let mut net = NetworkState::new(machine);
    let mut mailboxes: Vec<Mailbox> = (0..p).map(|_| Mailbox::new()).collect();
    let mut states: Vec<RankState> = (0..p)
        .map(|_| RankState {
            clock: 0,
            pending: None,
            done: false,
            in_barrier: false,
            blocked_recv: false,
        })
        .collect();
    let mut seq: u64 = 0;
    let mut live = p;
    let mut trace: Vec<MsgTrace> = Vec::new();
    let recording = config.recorder.is_some();
    let mut events: Vec<ScheduleEvent> = Vec::new();
    let mut steps: Vec<u32> = vec![0; p];

    // Collect the initial trap from every rank (threads run concurrently
    // up to their first communication call — zero virtual time).
    for rank in 0..p {
        states[rank].pending = Some(recv_trap(trap_rxs, grant_txs, &states, rank));
    }

    while live > 0 {
        // Classify pending barrier traps.
        for st in states.iter_mut() {
            if !st.done && matches!(st.pending, Some(Trap::Barrier)) {
                st.in_barrier = true;
            }
        }

        // Barrier release: every live rank has arrived.
        let in_barrier = states.iter().filter(|s| !s.done && s.in_barrier).count();
        if in_barrier == live && live > 0 {
            let t_max = states
                .iter()
                .filter(|s| !s.done)
                .map(|s| s.clock)
                .max()
                .unwrap();
            let rounds = usize::BITS - (live.max(2) - 1).leading_zeros();
            let t_rel = t_max + rounds as Time * (alpha_send + alpha_recv);
            for (rank, st) in states.iter_mut().enumerate() {
                if st.done {
                    continue;
                }
                st.clock = t_rel;
                st.in_barrier = false;
                st.pending = None;
                send_grant(grant_txs, rank, Grant::Done { clock: t_rel });
            }
            for rank in 0..p {
                if !states[rank].done {
                    states[rank].pending = Some(recv_trap(trap_rxs, grant_txs, &states, rank));
                }
            }
            continue;
        }

        // Pick the processable rank with the smallest effective time.
        let mut best: Option<(Time, usize)> = None;
        for rank in 0..p {
            let st = &states[rank];
            if st.done || st.in_barrier {
                continue;
            }
            let eff = match st.pending.as_ref().expect("live rank without pending trap") {
                Trap::Recv { src, tag } => match mailboxes[rank].peek_match(*src, *tag) {
                    Some((arrival, _)) => st.clock.max(arrival),
                    None => continue, // blocked
                },
                _ => st.clock,
            };
            if best.is_none_or(|(bt, br)| (eff, rank) < (bt, br)) {
                best = Some((eff, rank));
            }
        }

        let Some((_, rank)) = best else {
            abort_deadlock(machine, config, &states, &mailboxes, grant_txs, &mut events);
        };

        let trap = states[rank].pending.take().unwrap();
        match trap {
            Trap::Send { dst, tag, data } => {
                let ready = states[rank].clock + alpha_send;
                let bytes = data.len();
                let wire_ns = params.serialize_ns_lib(bytes, lib);
                let arrival = net.transfer(machine, rank, dst, bytes, wire_ns, ready);
                if config.trace {
                    trace.push(MsgTrace {
                        src: rank,
                        dst,
                        tag,
                        bytes,
                        send_ns: ready,
                        arrival_ns: arrival,
                        stalled_ns: net.last_stall_ns,
                    });
                }
                seq += 1;
                if recording {
                    events.push(ScheduleEvent::Send {
                        step: steps[rank],
                        seq,
                        src: rank,
                        dst,
                        tag,
                        data: data.clone(),
                    });
                }
                mailboxes[dst].insert(MsgRec {
                    arrival,
                    seq,
                    src: rank,
                    tag,
                    data,
                });
                states[rank].clock = ready;
                send_grant(grant_txs, rank, Grant::Sent { clock: ready });
                states[rank].pending = Some(recv_trap(trap_rxs, grant_txs, &states, rank));
            }
            Trap::Recv { src, tag } => {
                let rec = mailboxes[rank]
                    .take_match(src, tag)
                    .expect("selected recv without match");
                if recording || config.strict {
                    // Duplicates left behind share the matched (src, tag):
                    // delivery order alone decided which one this receive
                    // consumed — the match-ambiguity hazard.
                    let dup = mailboxes[rank].count_src_tag(rec.src, rec.tag) + 1;
                    if recording {
                        events.push(ScheduleEvent::Recv {
                            step: steps[rank],
                            rank,
                            src_filter: src,
                            tag_filter: tag,
                            seq: rec.seq,
                            src: rec.src,
                            tag: rec.tag,
                            dup_in_flight: dup,
                        });
                    }
                    if config.strict && dup > 1 {
                        abort_kernel(
                            config,
                            grant_txs,
                            &mut events,
                            false,
                            format!(
                                "ambiguous receive at rank {rank}: {dup} in-flight messages \
                                 with (src={}, tag={}) — delivery depends on queue order",
                                rec.src, rec.tag
                            ),
                        );
                    }
                }
                let arrival = rec.arrival;
                let waited_ns = arrival.saturating_sub(states[rank].clock);
                let clock = states[rank].clock.max(arrival) + alpha_recv;
                states[rank].clock = clock;
                states[rank].blocked_recv = false;
                let env = Envelope {
                    src: rec.src,
                    tag: rec.tag,
                    data: rec.data,
                    arrival,
                    waited_ns,
                };
                send_grant(grant_txs, rank, Grant::Received { env, clock });
                states[rank].pending = Some(recv_trap(trap_rxs, grant_txs, &states, rank));
            }
            Trap::ComputeNs { ns } => {
                states[rank].clock += ns;
                let clock = states[rank].clock;
                send_grant(grant_txs, rank, Grant::Done { clock });
                states[rank].pending = Some(recv_trap(trap_rxs, grant_txs, &states, rank));
            }
            Trap::Memcpy { bytes } => {
                states[rank].clock += params.memcpy_ns(bytes);
                let clock = states[rank].clock;
                send_grant(grant_txs, rank, Grant::Done { clock });
                states[rank].pending = Some(recv_trap(trap_rxs, grant_txs, &states, rank));
            }
            Trap::Barrier => unreachable!("barrier traps handled above"),
            Trap::IterMark => {
                steps[rank] += 1;
                if recording {
                    events.push(ScheduleEvent::IterEnd { rank });
                }
                let clock = states[rank].clock;
                send_grant(grant_txs, rank, Grant::Done { clock });
                states[rank].pending = Some(recv_trap(trap_rxs, grant_txs, &states, rank));
            }
            Trap::Finished => {
                let leftover = mailboxes[rank].len();
                if recording {
                    events.push(ScheduleEvent::Finished { rank, leftover });
                }
                if config.strict && leftover > 0 {
                    abort_kernel(
                        config,
                        grant_txs,
                        &mut events,
                        false,
                        format!(
                            "rank {rank} finished with {leftover} undelivered message(s) \
                             in its mailbox — unmatched send(s)"
                        ),
                    );
                }
                states[rank].done = true;
                finish_ns[rank] = states[rank].clock;
                grant_txs[rank] = None;
                live -= 1;
            }
        }
    }

    flush_recording(config, &mut events, false);
    (net.contention_events, net.contention_ns, trace)
}

/// Hand the accumulated schedule events to the configured recorder (if
/// any). Safe to call from abort paths: later flushes append nothing.
fn flush_recording(config: &SimConfig, events: &mut Vec<ScheduleEvent>, deadlocked: bool) {
    if let Some(log) = &config.recorder {
        let mut rec = log.lock().expect("schedule log poisoned");
        rec.events.append(events);
        rec.deadlocked |= deadlocked;
    }
}

/// Abort the simulation on a strict-check violation: flush the schedule
/// log, release every rank thread so `thread::scope` can join, then
/// propagate the diagnostic as a panic.
fn abort_kernel(
    config: &SimConfig,
    grant_txs: &mut [Option<Sender<Grant>>],
    events: &mut Vec<ScheduleEvent>,
    deadlocked: bool,
    msg: String,
) -> ! {
    flush_recording(config, events, deadlocked);
    for tx in grant_txs.iter_mut() {
        *tx = None;
    }
    panic!("{msg}");
}

fn recv_trap(
    trap_rxs: &[Receiver<Trap>],
    grant_txs: &mut [Option<Sender<Grant>>],
    states: &[RankState],
    rank: usize,
) -> Trap {
    match trap_rxs[rank].recv() {
        Ok(t) => t,
        Err(_) => {
            // The rank thread died without sending Finished — it panicked.
            // Release everyone so thread::scope can join, then propagate.
            for tx in grant_txs.iter_mut() {
                *tx = None;
            }
            let _ = states;
            panic!("rank {rank} terminated abnormally (panicked inside the simulated program)");
        }
    }
}

fn send_grant(grant_txs: &[Option<Sender<Grant>>], rank: usize, grant: Grant) {
    grant_txs[rank]
        .as_ref()
        .expect("grant channel already closed")
        .send(grant)
        .expect("rank thread disappeared");
}

fn abort_deadlock(
    machine: &Machine,
    config: &SimConfig,
    states: &[RankState],
    mailboxes: &[Mailbox],
    grant_txs: &mut [Option<Sender<Grant>>],
    events: &mut Vec<ScheduleEvent>,
) -> ! {
    let mut info = DeadlockInfo { states: Vec::new() };
    for (rank, st) in states.iter().enumerate() {
        let what = if st.done {
            "done".to_string()
        } else {
            match st.pending.as_ref() {
                Some(Trap::Recv { src, tag }) => {
                    events.push(ScheduleEvent::Blocked {
                        rank,
                        src_filter: *src,
                        tag_filter: *tag,
                    });
                    format!(
                        "blocked recv(src={src:?}, tag={tag:?}), mailbox has {} msgs",
                        mailboxes[rank].len()
                    )
                }
                Some(Trap::Barrier) => "waiting in barrier".to_string(),
                _ => "runnable?".to_string(),
            }
        };
        info.states
            .push(format!("rank {rank} @ {}ns: {what}", st.clock));
    }
    abort_kernel(
        config,
        grant_txs,
        events,
        true,
        format!("simulation deadlock on {}: {:#?}", machine.name, info),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_model::Machine;

    fn ring_machine() -> Machine {
        Machine::paragon(2, 4)
    }

    #[test]
    fn two_rank_ping() {
        let m = Machine::paragon(1, 2);
        let out = simulate(&m, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, b"hello");
                0u64
            } else {
                let env = ctx.recv(Some(0), Some(7));
                assert_eq!(env.data, b"hello");
                env.arrival
            }
        });
        assert!(out.makespan_ns > 0);
        // Receiver finishes after arrival + alpha_recv.
        assert!(out.finish_ns[1] > out.results[1]);
        // Sender pays only startup.
        assert_eq!(
            out.finish_ns[0],
            m.params.alpha_send(mpp_model::LibraryKind::Nx)
        );
    }

    #[test]
    fn messages_delivered_in_arrival_order() {
        // Rank 2 is adjacent to rank 1; rank 3 is farther. Rank 1 receives
        // twice with wildcard and must get the earlier arrival first even
        // though the farther message was sent first (same clocks).
        let m = Machine::paragon(1, 8);
        let out = simulate(&m, |ctx| match ctx.rank() {
            7 => {
                ctx.send(0, 1, b"far");
                Vec::new()
            }
            1 => {
                ctx.send(0, 1, b"near");
                Vec::new()
            }
            0 => {
                let a = ctx.recv(None, Some(1));
                let b = ctx.recv(None, Some(1));
                vec![a.src, b.src]
            }
            _ => Vec::new(),
        });
        assert_eq!(out.results[0], vec![1, 7]);
    }

    #[test]
    fn recv_wait_time_reported() {
        let m = Machine::paragon(1, 2);
        let out = simulate(&m, |ctx| {
            if ctx.rank() == 0 {
                ctx.compute_ns(1_000_000); // sender is slow
                ctx.send(1, 0, &[1; 128]);
                0
            } else {
                let env = ctx.recv(Some(0), Some(0));
                env.waited_ns
            }
        });
        assert!(
            out.results[1] >= 1_000_000,
            "receiver should have waited ≥1ms"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let m = ring_machine();
        let run = || {
            simulate(&m, |ctx| {
                let p = ctx.size();
                let next = (ctx.rank() + 1) % p;
                let prev = (ctx.rank() + p - 1) % p;
                ctx.send(next, 3, &vec![ctx.rank() as u8; 256]);
                let env = ctx.recv(Some(prev), Some(3));
                ctx.charge_memcpy(env.data.len());
                ctx.clock()
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.finish_ns, b.finish_ns);
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.contention_ns, b.contention_ns);
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let m = ring_machine();
        let out = simulate(&m, |ctx| {
            if ctx.rank() == 0 {
                ctx.compute_ns(5_000_000);
            }
            ctx.barrier();
            ctx.clock()
        });
        let clocks: Vec<_> = out.results;
        assert!(clocks.iter().all(|&c| c == clocks[0]));
        assert!(clocks[0] >= 5_000_000);
    }

    #[test]
    fn compute_and_memcpy_advance_clock() {
        let m = Machine::paragon(1, 2);
        let out = simulate(&m, |ctx| {
            if ctx.rank() == 0 {
                ctx.compute_ns(123);
                ctx.charge_memcpy(1024);
            }
            ctx.clock()
        });
        let expect = 123 + m.params.memcpy_ns(1024);
        assert_eq!(out.results[0], expect);
        assert_eq!(out.results[1], 0);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let m = Machine::paragon(1, 2);
        simulate(&m, |ctx| {
            // Both ranks receive, nobody sends.
            let _ = ctx.recv(None, None);
        });
    }

    #[test]
    fn mpi_config_slower_than_nx() {
        let m = Machine::paragon(1, 4);
        let prog = |ctx: &mut RankCtx| {
            if ctx.rank() == 0 {
                for dst in 1..4 {
                    ctx.send(dst, 0, &[0u8; 1024]);
                }
            } else {
                ctx.recv(Some(0), Some(0));
            }
        };
        let nx = simulate_with(
            &m,
            &SimConfig {
                lib: LibraryKind::Nx,
                ..Default::default()
            },
            prog,
        );
        let mpi = simulate_with(
            &m,
            &SimConfig {
                lib: LibraryKind::Mpi,
                ..Default::default()
            },
            prog,
        );
        assert!(mpi.makespan_ns > nx.makespan_ns);
        let ratio = mpi.makespan_ns as f64 / nx.makespan_ns as f64;
        assert!(ratio < 1.10, "MPI overhead should be modest, got {ratio}");
    }

    #[test]
    fn tag_filtering_respects_order_within_tag() {
        let m = Machine::paragon(1, 2);
        let out = simulate(&m, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 10, b"a");
                ctx.send(1, 20, b"b");
                ctx.send(1, 10, b"c");
                Vec::new()
            } else {
                let x = ctx.recv(Some(0), Some(20));
                let y = ctx.recv(Some(0), Some(10));
                let z = ctx.recv(Some(0), Some(10));
                vec![x.data, y.data, z.data]
            }
        });
        assert_eq!(
            out.results[1],
            vec![b"b".to_vec(), b"a".to_vec(), b"c".to_vec()]
        );
    }

    #[test]
    fn hot_spot_contention_is_counted() {
        let m = Machine::paragon(4, 4);
        let out = simulate(&m, |ctx| {
            if ctx.rank() == 0 {
                for _ in 1..16 {
                    ctx.recv(None, None);
                }
            } else {
                ctx.send(0, 0, &[0u8; 16384]);
            }
        });
        assert!(
            out.contention_events > 0,
            "gather to rank 0 must show contention"
        );
    }

    #[test]
    fn tracing_records_every_message() {
        let m = Machine::paragon(2, 2);
        let config = SimConfig {
            trace: true,
            ..Default::default()
        };
        let out = simulate_with(&m, &config, |ctx| {
            if ctx.rank() == 0 {
                for dst in 1..4 {
                    ctx.send(dst, 5, &[0u8; 256]);
                }
            } else {
                ctx.recv(Some(0), Some(5));
            }
        });
        assert_eq!(out.trace.len(), 3);
        for t in &out.trace {
            assert_eq!(t.src, 0);
            assert_eq!(t.bytes, 256);
            assert!(t.arrival_ns > t.send_ns);
        }
        // Untraced runs stay empty.
        let out2 = simulate(&m, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 5, &[0u8; 8]);
            } else if ctx.rank() == 1 {
                ctx.recv(Some(0), Some(5));
            }
        });
        assert!(out2.trace.is_empty());
    }

    #[test]
    fn makespan_is_max_finish() {
        let m = ring_machine();
        let out = simulate(&m, |ctx| {
            ctx.compute_ns(100 * (ctx.rank() as u64 + 1));
        });
        assert_eq!(out.makespan_ns, 800);
        assert_eq!(out.finish_ns[7], 800);
    }
}

//! Deterministic discrete-event simulation of message-passing MPPs.
//!
//! # Execution model
//!
//! Each virtual processor (*rank*) runs the user's per-rank program on its
//! own OS thread, but the simulation kernel lets **exactly one rank run at
//! a time** ("sequentialized direct execution"): a rank runs until its next
//! communication call, which traps into the kernel; the kernel then picks
//! the runnable rank with the smallest virtual clock (ties broken by rank
//! id) and resumes it. Because every scheduling decision is a pure function
//! of virtual time and rank ids, two simulations of the same program on the
//! same [`Machine`](mpp_model::Machine) produce bit-identical virtual times
//! and message orders, regardless of host scheduling.
//!
//! # Timing model
//!
//! A send of `m` payload bytes from rank `u` to rank `v` (physical route
//! of `h` hops) costs, in virtual nanoseconds:
//!
//! ```text
//! ready  = clock(u) + α_send                    sender software
//! start  = max(ready, free slot of u's out-ports, free slot of v's
//!              in-ports − h·τ, per-link window constraints)
//! done   = start + h·τ + m·β
//! arrival at v's mailbox = done
//! clock(u) = ready                              (asynchronous send)
//! recv at v: clock(v) = max(clock(v), arrival) + α_recv
//! ```
//!
//! Each node has `ports_per_node` independent injection/ejection slots.
//! How overlapping transfers contend for links is selected by
//! [`ContentionModel`](mpp_model::ContentionModel): the default
//! `Pipelined` wormhole model (staggered per-link windows), `Circuit`
//! (whole route held until the tail drains), or `Shared` (links as
//! bandwidth servers at the hardware channel rate). See DESIGN.md §6 and
//! the `repro-contention` ablation.
//!
//! # Entry point
//!
//! [`simulate`] runs one per-rank program on every rank of a machine and
//! returns per-rank results, finish times, and the makespan.

pub mod kernel;
pub(crate) mod mailbox;
pub mod network;
pub mod payload;
pub mod record;
pub mod trace;

pub use kernel::{simulate, simulate_with, DeadlockInfo, Envelope, RankCtx, SimConfig, SimOutcome};
pub use network::NetworkState;
pub use payload::{copy_metrics, CopyMetrics, Payload, PayloadReader};
pub use record::{schedule_log, ScheduleEvent, ScheduleLog, ScheduleRecording};
pub use trace::{render_timeline, summarize, MsgTrace, TraceSummary};

/// Message tag, used by algorithms to match iteration/phase traffic.
pub type Tag = u32;

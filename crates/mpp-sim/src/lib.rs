//! Deterministic discrete-event simulation of message-passing MPPs.
//!
//! # Execution model
//!
//! Rank programs are `async` state machines; the simulation kernel lets
//! **exactly one rank run at a time** ("sequentialized direct
//! execution"): a rank runs until its next blocking communication call,
//! and the kernel then resumes the runnable rank with the smallest
//! virtual clock (ties broken by rank id). Because every scheduling
//! decision is a pure function of virtual time and rank ids, two
//! simulations of the same program on the same
//! [`Machine`](mpp_model::Machine) produce bit-identical virtual times
//! and message orders, regardless of host scheduling.
//!
//! Two executors implement this model (selected by
//! [`SimConfig::exec`] / the `STP_EXEC` environment variable):
//!
//! * [`ExecMode::Cooperative`] (default): all rank programs are
//!   multiplexed on the kernel's own thread as resumable futures.
//!   Sends, compute and memcpy charges are handled rank-locally and
//!   deferred; only `recv`/`barrier` suspend. Scheduling uses an
//!   indexed ready-queue (min-heap with lazy invalidation plus a
//!   blocked-recv wakeup index) — O(log p) per event.
//! * [`ExecMode::Threaded`]: the original one-OS-thread-per-rank
//!   trap/grant model, kept as the differential-testing baseline.
//!
//! Both executors share the same event-processing core and are verified
//! to produce byte-identical outcomes (see `tests/exec_equivalence.rs`
//! and DESIGN.md §8).
//!
//! # Timing model
//!
//! A send of `m` payload bytes from rank `u` to rank `v` (physical route
//! of `h` hops) costs, in virtual nanoseconds:
//!
//! ```text
//! ready  = clock(u) + α_send                    sender software
//! start  = max(ready, free slot of u's out-ports, free slot of v's
//!              in-ports − h·τ, per-link window constraints)
//! done   = start + h·τ + m·β
//! arrival at v's mailbox = done
//! clock(u) = ready                              (asynchronous send)
//! recv at v: clock(v) = max(clock(v), arrival) + α_recv
//! ```
//!
//! Each node has `ports_per_node` independent injection/ejection slots.
//! How overlapping transfers contend for links is selected by
//! [`ContentionModel`](mpp_model::ContentionModel): the default
//! `Pipelined` wormhole model (staggered per-link windows), `Circuit`
//! (whole route held until the tail drains), or `Shared` (links as
//! bandwidth servers at the hardware channel rate). See DESIGN.md §6 and
//! the `repro-contention` ablation.
//!
//! # Entry point
//!
//! [`simulate`] runs one per-rank program on every rank of a machine and
//! returns per-rank results, finish times, and the makespan.

pub mod error;
pub(crate) mod exec;
pub mod kernel;
pub(crate) mod mailbox;
pub mod network;
pub mod payload;
pub mod record;
pub(crate) mod sched;
pub(crate) mod slab;
pub mod supervise;
pub mod trace;

pub use error::SimError;
pub use kernel::{
    block_on_ready, simulate, simulate_with, try_simulate, try_simulate_with, BarrierFuture,
    DeadlockInfo, Envelope, ExecMode, FaultStats, RankCtx, RecvFuture, RecvTimeoutFuture,
    SimConfig, SimOutcome,
};
pub use mpp_model::{FaultPlan, LinkOutage, NodeCrash, RetryPolicy};
pub use network::NetworkState;
pub use payload::{copy_metrics, CopyMetrics, Payload, PayloadReader};
pub use record::{schedule_log, LinkWindow, ScheduleEvent, ScheduleLog, ScheduleRecording};
pub use supervise::{CancelToken, SimBudget};
pub use trace::{render_timeline, summarize, MsgTrace, TraceSummary};

/// Message tag, used by algorithms to match iteration/phase traffic.
pub type Tag = u32;

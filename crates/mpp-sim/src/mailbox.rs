//! Hybrid per-rank mailbox.
//!
//! The seed kernel kept each rank's undelivered messages in a
//! `VecDeque` and ran a linear scan per `recv` (and per scheduling
//! decision for a blocked rank) to find the earliest match — O(n) per
//! probe, and the scheduler probes every blocked rank every step. The
//! replacement keeps the same *deterministic* selection rule — among
//! matching messages, smallest `(arrival, seq)` wins — behind two
//! representations chosen by queue depth:
//!
//! * **Small** (the common case: almost every rank in every paper
//!   algorithm holds a handful of messages): a `Vec` kept sorted by
//!   `(arrival, seq)`. The earliest match is the *first* matching
//!   element, probes are short linear scans with no pointer chasing,
//!   and inserts are a binary search plus a memmove — far cheaper in
//!   practice than maintaining four B-tree indices.
//! * **Indexed** (deep fan-in, e.g. persistent all-to-all roots): once
//!   the queue crosses [`SPILL_AT`] it spills — one way — into ordered
//!   indices making every probe O(log n): exact `(src, tag)` queries
//!   hit a `BTreeMap<(src, tag), BTreeSet>`, single-key wildcards hit
//!   per-key sets, full wildcards hit a global ordered set.
//!
//! Both representations order on `(arrival, seq)` keys, so the winner
//! of any probe is exactly what the seed's linear scan selected;
//! virtual-time outcomes are bit-identical by construction (checked by
//! the proptest below, whose insert volume crosses the spill
//! threshold).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use mpp_model::Time;

use crate::payload::Payload;
use crate::Tag;

/// An undelivered message held by the kernel.
pub(crate) struct MsgRec {
    pub arrival: Time,
    pub seq: u64,
    pub src: usize,
    pub tag: Tag,
    pub data: Payload,
}

impl MsgRec {
    #[inline]
    fn key(&self) -> Key {
        (self.arrival, self.seq)
    }

    #[inline]
    fn matches(&self, src: Option<usize>, tag: Option<Tag>) -> bool {
        !(src.is_some_and(|s| s != self.src) || tag.is_some_and(|t| t != self.tag))
    }
}

type Key = (Time, u64); // (arrival, seq) — the deterministic delivery order

/// Queue depth at which a mailbox spills from the sorted-`Vec` to the
/// indexed representation. Spilling is one-way: a rank that has proven
/// it accumulates deep backlogs keeps the indexed form for the run.
const SPILL_AT: usize = 32;

pub(crate) enum Mailbox {
    Small(Vec<MsgRec>),
    Indexed(Box<Indexed>),
}

impl Default for Mailbox {
    fn default() -> Self {
        Mailbox::Small(Vec::new())
    }
}

impl Mailbox {
    pub fn new() -> Self {
        Mailbox::default()
    }

    pub fn len(&self) -> usize {
        match self {
            Mailbox::Small(v) => v.len(),
            Mailbox::Indexed(ix) => ix.msgs.len(),
        }
    }

    pub fn insert(&mut self, rec: MsgRec) {
        match self {
            Mailbox::Small(v) => {
                if v.len() == SPILL_AT {
                    let mut ix = Box::<Indexed>::default();
                    for r in v.drain(..) {
                        ix.insert(r);
                    }
                    ix.insert(rec);
                    *self = Mailbox::Indexed(ix);
                    return;
                }
                let key = rec.key();
                let at = v.partition_point(|m| m.key() < key);
                v.insert(at, rec);
            }
            Mailbox::Indexed(ix) => ix.insert(rec),
        }
    }

    /// Earliest `(arrival, seq)` among messages matching the filter,
    /// without removing it.
    pub fn peek_match(&self, src: Option<usize>, tag: Option<Tag>) -> Option<Key> {
        match self {
            // Sorted by key, so the first match is the minimum.
            Mailbox::Small(v) => v.iter().find(|m| m.matches(src, tag)).map(MsgRec::key),
            Mailbox::Indexed(ix) => ix.peek_match(src, tag),
        }
    }

    /// Number of undelivered messages with exactly this `(src, tag)`.
    ///
    /// This is the match-ambiguity probe shared by the kernel's strict
    /// runtime checks and the `stp-analyzer` schedule checker: a count
    /// `> 1` at match time means several in-flight messages were
    /// distinguishable only by queue order.
    pub fn count_src_tag(&self, src: usize, tag: Tag) -> usize {
        match self {
            Mailbox::Small(v) => v.iter().filter(|m| m.src == src && m.tag == tag).count(),
            Mailbox::Indexed(ix) => ix.by_src_tag.get(&(src, tag)).map_or(0, BTreeSet::len),
        }
    }

    /// Remove and return the earliest matching message.
    pub fn take_match(&mut self, src: Option<usize>, tag: Option<Tag>) -> Option<MsgRec> {
        match self {
            Mailbox::Small(v) => {
                let at = v.iter().position(|m| m.matches(src, tag))?;
                Some(v.remove(at))
            }
            Mailbox::Indexed(ix) => ix.take_match(src, tag),
        }
    }
}

/// The fully-indexed representation (see module docs).
#[derive(Default)]
pub(crate) struct Indexed {
    msgs: HashMap<u64, MsgRec>, // seq → record
    all: BTreeSet<Key>,
    by_src_tag: BTreeMap<(usize, Tag), BTreeSet<Key>>,
    by_src: BTreeMap<usize, BTreeSet<Key>>,
    by_tag: BTreeMap<Tag, BTreeSet<Key>>,
}

impl Indexed {
    fn insert(&mut self, rec: MsgRec) {
        let key = rec.key();
        self.all.insert(key);
        self.by_src_tag
            .entry((rec.src, rec.tag))
            .or_default()
            .insert(key);
        self.by_src.entry(rec.src).or_default().insert(key);
        self.by_tag.entry(rec.tag).or_default().insert(key);
        self.msgs.insert(rec.seq, rec);
    }

    fn peek_match(&self, src: Option<usize>, tag: Option<Tag>) -> Option<Key> {
        match (src, tag) {
            (Some(s), Some(t)) => self.by_src_tag.get(&(s, t)).and_then(|set| set.first()),
            (Some(s), None) => self.by_src.get(&s).and_then(|set| set.first()),
            (None, Some(t)) => self.by_tag.get(&t).and_then(|set| set.first()),
            (None, None) => self.all.first(),
        }
        .copied()
    }

    fn take_match(&mut self, src: Option<usize>, tag: Option<Tag>) -> Option<MsgRec> {
        let key = self.peek_match(src, tag)?;
        let rec = self
            .msgs
            .remove(&key.1)
            .expect("index referenced missing message");
        self.all.remove(&key);
        prune(&mut self.by_src_tag, (rec.src, rec.tag), key);
        prune(&mut self.by_src, rec.src, key);
        prune(&mut self.by_tag, rec.tag, key);
        Some(rec)
    }
}

fn prune<K: Ord>(map: &mut BTreeMap<K, BTreeSet<Key>>, at: K, key: Key) {
    if let Some(set) = map.get_mut(&at) {
        set.remove(&key);
        if set.is_empty() {
            map.remove(&at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(arrival: Time, seq: u64, src: usize, tag: Tag) -> MsgRec {
        MsgRec {
            arrival,
            seq,
            src,
            tag,
            data: Payload::new(),
        }
    }

    /// The seed kernel's mailbox: a flat list scanned linearly per probe.
    /// Kept as the reference model for the equivalence proptest below.
    #[derive(Default)]
    struct LinearScanMailbox {
        msgs: Vec<MsgRec>,
    }

    impl LinearScanMailbox {
        fn insert(&mut self, rec: MsgRec) {
            self.msgs.push(rec);
        }

        fn best(&self, src: Option<usize>, tag: Option<Tag>) -> Option<usize> {
            let mut best: Option<usize> = None;
            for (i, m) in self.msgs.iter().enumerate() {
                if src.is_some_and(|s| s != m.src) || tag.is_some_and(|t| t != m.tag) {
                    continue;
                }
                if best
                    .is_none_or(|b| (m.arrival, m.seq) < (self.msgs[b].arrival, self.msgs[b].seq))
                {
                    best = Some(i);
                }
            }
            best
        }

        fn peek_match(&self, src: Option<usize>, tag: Option<Tag>) -> Option<Key> {
            self.best(src, tag)
                .map(|i| (self.msgs[i].arrival, self.msgs[i].seq))
        }

        fn take_match(&mut self, src: Option<usize>, tag: Option<Tag>) -> Option<MsgRec> {
            self.best(src, tag).map(|i| self.msgs.swap_remove(i))
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(256))]

        /// The hybrid mailbox delivers in exactly the seed's linear-scan
        /// order under randomized interleavings of inserts and filtered
        /// takes — including duplicate `(src, tag)` posts, duplicate
        /// arrival times (the ambiguity case the analyzer flags), and
        /// insert volumes that cross the small→indexed spill threshold.
        #[test]
        fn indexed_matches_linear_scan(ops in proptest::collection::vec(
            (0u8..4, 0usize..4, 0u32..3, 0u64..6, 0u8..4), 1..120)
        ) {
            let mut indexed = Mailbox::new();
            let mut reference = LinearScanMailbox::default();
            let mut seq = 0u64;
            for (kind, src, tag, arrival, wild) in ops {
                if kind < 2 {
                    // Insert: small key ranges force (src, tag) and
                    // arrival collisions; seq stays unique like the
                    // kernel's global counter.
                    seq += 1;
                    indexed.insert(rec(arrival, seq, src, tag));
                    reference.insert(rec(arrival, seq, src, tag));
                } else {
                    let src_f = (wild & 1 == 0).then_some(src);
                    let tag_f = (wild & 2 == 0).then_some(tag);
                    proptest::prop_assert_eq!(
                        indexed.peek_match(src_f, tag_f),
                        reference.peek_match(src_f, tag_f)
                    );
                    let a = indexed.take_match(src_f, tag_f);
                    let b = reference.take_match(src_f, tag_f);
                    proptest::prop_assert_eq!(
                        a.as_ref().map(|m| (m.arrival, m.seq, m.src, m.tag)),
                        b.as_ref().map(|m| (m.arrival, m.seq, m.src, m.tag))
                    );
                    proptest::prop_assert_eq!(indexed.len(), reference.msgs.len());
                }
            }
            // Drain whatever is left through the full wildcard: both
            // mailboxes must agree message by message to the end.
            while let Some(a) = indexed.take_match(None, None) {
                let b = reference.take_match(None, None).expect("reference drained early");
                proptest::prop_assert_eq!((a.arrival, a.seq), (b.arrival, b.seq));
            }
            proptest::prop_assert!(reference.msgs.is_empty());
        }
    }

    #[test]
    fn selection_matches_linear_scan_rule() {
        let mut mb = Mailbox::new();
        // Insert out of arrival order; same arrival → lower seq wins.
        mb.insert(rec(50, 3, 1, 7));
        mb.insert(rec(10, 5, 2, 7));
        mb.insert(rec(10, 4, 1, 8));
        mb.insert(rec(99, 1, 3, 9));

        assert_eq!(mb.peek_match(None, None), Some((10, 4)));
        assert_eq!(mb.peek_match(None, Some(7)), Some((10, 5)));
        assert_eq!(mb.peek_match(Some(1), None), Some((10, 4)));
        assert_eq!(mb.peek_match(Some(1), Some(7)), Some((50, 3)));
        assert_eq!(mb.peek_match(Some(9), None), None);
        assert_eq!(mb.peek_match(None, Some(42)), None);

        let first = mb.take_match(None, None).unwrap();
        assert_eq!((first.arrival, first.seq), (10, 4));
        // Wildcard now falls through to the next earliest.
        assert_eq!(mb.peek_match(None, None), Some((10, 5)));
        assert_eq!(mb.len(), 3);
    }

    #[test]
    fn count_src_tag_tracks_duplicates() {
        let mut mb = Mailbox::new();
        mb.insert(rec(10, 1, 0, 7));
        mb.insert(rec(20, 2, 0, 7));
        mb.insert(rec(30, 3, 1, 7));
        assert_eq!(mb.count_src_tag(0, 7), 2);
        assert_eq!(mb.count_src_tag(1, 7), 1);
        assert_eq!(mb.count_src_tag(2, 7), 0);
        mb.take_match(Some(0), Some(7)).unwrap();
        assert_eq!(mb.count_src_tag(0, 7), 1);
    }

    #[test]
    fn indices_stay_consistent_through_churn() {
        let mut mb = Mailbox::new();
        for i in 0..100u64 {
            mb.insert(rec(1000 - i, i, (i % 7) as usize, (i % 3) as u32));
        }
        assert!(
            matches!(mb, Mailbox::Indexed(_)),
            "100 inserts must spill to the indexed form"
        );
        let mut last = 0;
        let mut taken = 0;
        while let Some(r) = mb.take_match(None, None) {
            assert!(r.arrival >= last, "wildcard drain must be arrival-ordered");
            last = r.arrival;
            taken += 1;
        }
        assert_eq!(taken, 100);
        assert_eq!(mb.len(), 0);
        assert_eq!(mb.peek_match(Some(0), Some(0)), None);
    }

    #[test]
    fn behavior_is_continuous_across_the_spill() {
        let mut mb = Mailbox::new();
        for i in 0..SPILL_AT as u64 {
            mb.insert(rec(100 + i, i, (i % 3) as usize, 7));
        }
        assert!(matches!(mb, Mailbox::Small(_)));
        assert_eq!(mb.peek_match(Some(1), Some(7)), Some((101, 1)));
        // The insert that crosses the threshold spills...
        mb.insert(rec(10, 999, 2, 8));
        assert!(matches!(mb, Mailbox::Indexed(_)));
        // ...and the spilled mailbox answers exactly as before.
        assert_eq!(mb.len(), SPILL_AT + 1);
        assert_eq!(mb.peek_match(None, None), Some((10, 999)));
        assert_eq!(mb.peek_match(Some(1), Some(7)), Some((101, 1)));
        assert_eq!(mb.count_src_tag(2, 7), 10);
        let got = mb.take_match(None, Some(8)).unwrap();
        assert_eq!((got.arrival, got.seq), (10, 999));
    }
}

//! Network resource state: link and port reservations.
//!
//! The unit of contention is a directed [`Link`] plus one injection port
//! and one ejection port per node. A transfer reserves each link of its
//! dimension-ordered route for a *staggered* window (head arrives at link
//! `i` at `start + i·τ`, the link drains for the full serialization
//! time) — a pipelined wormhole model: transfers whose routes overlap
//! serialize on the shared links only, not on their whole paths.

use std::collections::HashMap;

use mpp_model::{ContentionModel, Link, Machine, Time};

use crate::record::LinkWindow;

/// Per-directed-link busy-until times.
///
/// Links are the hottest lookup in the kernel (every hop of every
/// transfer probes and updates one), so for machines of realistic size
/// the table is a dense `n × n` array indexed `from · n + to` — O(1)
/// with no hashing and no per-insert allocation. Pathologically large
/// node counts fall back to a hash map to keep memory bounded.
#[derive(Debug)]
enum LinkTable {
    Dense { busy: Vec<Time>, n: usize },
    Sparse(HashMap<Link, Time>),
}

/// Largest node count that gets the dense table (512² entries = 2 MiB).
const DENSE_MAX_NODES: usize = 512;

impl LinkTable {
    fn new(n: usize) -> LinkTable {
        if n <= DENSE_MAX_NODES {
            LinkTable::Dense {
                busy: vec![0; n * n],
                n,
            }
        } else {
            LinkTable::Sparse(HashMap::new())
        }
    }

    /// Busy-until time of a link (0 = never used).
    #[inline]
    fn get(&self, link: &Link) -> Time {
        match self {
            LinkTable::Dense { busy, n } => busy[link.from * n + link.to],
            LinkTable::Sparse(map) => map.get(link).copied().unwrap_or(0),
        }
    }

    #[inline]
    fn set(&mut self, link: &Link, until: Time) {
        match self {
            LinkTable::Dense { busy, n } => busy[link.from * *n + link.to] = until,
            LinkTable::Sparse(map) => {
                map.insert(*link, until);
            }
        }
    }
}

/// Mutable reservation state of the interconnect during a simulation.
#[derive(Debug)]
pub struct NetworkState {
    /// Per-directed-link busy-until time.
    link_busy: LinkTable,
    /// Scratch route buffer reused across transfers (see
    /// [`Topology::route_into`][mpp_model::Topology::route_into]).
    route_buf: Vec<Link>,
    /// Per-node injection-port slots (`ports_per_node` each), busy-until.
    out_port_busy: Vec<Vec<Time>>,
    /// Per-node ejection-port slots, busy-until.
    in_port_busy: Vec<Vec<Time>>,
    /// Total number of link-contention stalls observed (a transfer found a
    /// link busy past its software-ready time).
    pub contention_events: u64,
    /// Total stall time accumulated across transfers (ns).
    pub contention_ns: Time,
    /// Stall of the most recent transfer (ns) — read by the kernel when
    /// tracing is enabled.
    pub last_stall_ns: Time,
    /// When set, every [`NetworkState::transfer_routed`] fills
    /// [`NetworkState::witness`] with its full reservation record — the
    /// schedule recorder's timing ground truth. Off in plain timed runs
    /// so the hot path pays one predictable branch.
    pub witness_on: bool,
    /// The most recent transfer's reservation record (valid only right
    /// after a `transfer_routed` call with `witness_on` set).
    pub witness: XferWitness,
}

/// Everything one routed transfer reserved — consumed by the schedule
/// recorder so the static cost engine can be checked for exact
/// conformance against the kernel.
#[derive(Debug, Default)]
pub struct XferWitness {
    /// The instant the message was handed to the network (ns).
    pub ready_ns: Time,
    /// Head injection instant after port and link arbitration (ns).
    pub start_ns: Time,
    /// Arrival at the destination (ns).
    pub done_ns: Time,
    /// Injection-port slot reserved at the source node.
    pub out_slot: usize,
    /// Ejection-port slot reserved at the destination node.
    pub in_slot: usize,
    /// Per-hop link reservations, in route order.
    pub windows: Vec<LinkWindow>,
}

/// Index of the earliest-free slot (ties → lowest index, deterministic).
fn best_slot(slots: &[Time]) -> usize {
    let mut best = 0;
    for (i, &t) in slots.iter().enumerate().skip(1) {
        if t < slots[best] {
            best = i;
        }
    }
    best
}

impl NetworkState {
    /// Fresh, idle network for the given machine.
    pub fn new(machine: &Machine) -> Self {
        let n = machine.topology.num_nodes();
        // `MachineParams::validate` (run at `Machine::new`) guarantees
        // at least one port slot; no defensive clamp needed here.
        let k = machine.params.ports_per_node;
        NetworkState {
            link_busy: LinkTable::new(n),
            route_buf: Vec::new(),
            out_port_busy: vec![vec![0; k]; n],
            in_port_busy: vec![vec![0; k]; n],
            contention_events: 0,
            contention_ns: 0,
            last_stall_ns: 0,
            witness_on: false,
            witness: XferWitness::default(),
        }
    }

    /// Reserve the route for one transfer and return its arrival time.
    ///
    /// `ready` is the instant the message is software-ready at the sender
    /// (clock + α_send); `bytes` is the on-wire size; `wire_ns` the
    /// serialization time for those bytes (already scaled for the
    /// library flavour by the caller).
    ///
    /// Wormhole pipelining: the message head reaches link `i` at
    /// `start + i·τ` and occupies it for `wire_ns`; each link is
    /// reserved only for its own window, so transfers whose routes
    /// overlap serialize on the shared links rather than on the whole
    /// path.
    pub fn transfer(
        &mut self,
        machine: &Machine,
        from_rank: usize,
        to_rank: usize,
        bytes: usize,
        wire_ns: Time,
        ready: Time,
    ) -> Time {
        if from_rank == to_rank {
            // Local delivery: a memcpy, no network resources.
            self.last_stall_ns = 0;
            return ready + machine.params.memcpy_ns(bytes);
        }
        let mut route = std::mem::take(&mut self.route_buf);
        machine.topology.route_into(
            machine.node_of(from_rank),
            machine.node_of(to_rank),
            &mut route,
        );
        let done = self.transfer_routed(machine, from_rank, to_rank, bytes, wire_ns, ready, &route);
        self.route_buf = route;
        done
    }

    /// Like [`NetworkState::transfer`] but over an explicit `route`
    /// (e.g. a fault detour instead of the dimension-ordered path).
    ///
    /// The contention baseline is the resource-free traversal of *this*
    /// route, so a longer detour charges its extra hops as routing cost,
    /// not as link contention — the caller accounts detour overhead
    /// separately. `route` must be a valid `from → to` walk; callers
    /// handle `from_rank == to_rank` before routing.
    #[allow(clippy::too_many_arguments)]
    pub fn transfer_routed(
        &mut self,
        machine: &Machine,
        from_rank: usize,
        to_rank: usize,
        bytes: usize,
        wire_ns: Time,
        ready: Time,
        route: &[Link],
    ) -> Time {
        let params = &machine.params;
        self.last_stall_ns = 0;
        let witness_on = self.witness_on;
        if witness_on {
            self.witness.windows.clear();
        }
        debug_assert_ne!(from_rank, to_rank, "self-sends bypass the network");
        let u = machine.node_of(from_rank);
        let v = machine.node_of(to_rank);
        let tau = params.tau_hop_ns;

        let out_slot = best_slot(&self.out_port_busy[u]);
        let in_slot = best_slot(&self.in_port_busy[v]);
        let port_free = ready
            .max(self.out_port_busy[u][out_slot])
            .max(self.in_port_busy[v][in_slot].saturating_sub(route.len() as Time * tau));

        let (start, done) = match params.contention {
            ContentionModel::Shared => {
                // Each link is a queueing server at the hardware channel
                // rate: the head queues at congested links, the tail
                // drains at the (slower) software rate behind it.
                let link_ns = params.link_ns(bytes);
                let mut head = port_free;
                for link in route {
                    head = head.max(self.link_busy.get(link));
                    self.link_busy.set(link, head + link_ns);
                    if witness_on {
                        self.witness.windows.push(LinkWindow {
                            link: *link,
                            from_ns: head,
                            until_ns: head + link_ns,
                        });
                    }
                    head += tau;
                }
                let done = head + wire_ns;
                // The tail drains behind the (possibly stalled) head, so
                // the injection port stays occupied relative to where the
                // head actually got to — not to the stall-free schedule.
                // (`head` has advanced len·τ past the last queueing point.)
                let start = head - route.len() as Time * tau;
                (start, done)
            }
            model => {
                // The worm occupies each link for the full transfer;
                // Pipelined staggers the windows by the head latency,
                // Circuit holds every link until the tail drains.
                let pipelined = model == ContentionModel::Pipelined;
                let mut start = port_free;
                for (i, link) in route.iter().enumerate() {
                    let busy = self.link_busy.get(link);
                    let slack = if pipelined { i as Time * tau } else { 0 };
                    start = start.max(busy.saturating_sub(slack));
                }
                let done = start + params.hops_ns(route.len()) + wire_ns;
                for (i, link) in route.iter().enumerate() {
                    let until = if pipelined {
                        start + i as Time * tau + wire_ns
                    } else {
                        done
                    };
                    self.link_busy.set(link, until);
                    if witness_on {
                        let from_ns = if pipelined {
                            start + i as Time * tau
                        } else {
                            start
                        };
                        self.witness.windows.push(LinkWindow {
                            link: *link,
                            from_ns,
                            until_ns: until,
                        });
                    }
                }
                (start, done)
            }
        };
        // Any delay beyond the resource-free traversal of this route
        // counts as a stall (detour hops are the caller's cost, not ours).
        let unconstrained = ready + params.hops_ns(route.len()) + wire_ns;
        if done > unconstrained {
            let stall = done - unconstrained;
            self.contention_events += 1;
            self.contention_ns += stall;
            self.last_stall_ns = stall;
        }
        self.out_port_busy[u][out_slot] = start + wire_ns;
        self.in_port_busy[v][in_slot] = done;
        if witness_on {
            self.witness.ready_ns = ready;
            self.witness.start_ns = start;
            self.witness.done_ns = done;
            self.witness.out_slot = out_slot;
            self.witness.in_slot = in_slot;
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_model::Machine;

    fn m() -> Machine {
        Machine::paragon(4, 4)
    }

    #[test]
    fn uncontended_transfer_cost() {
        let machine = m();
        let mut net = NetworkState::new(&machine);
        let t = net.transfer(
            &machine,
            0,
            3,
            1024,
            machine.params.serialize_ns(1024),
            1000,
        );
        let expect = 1000 + machine.params.hops_ns(3) + machine.params.serialize_ns(1024);
        assert_eq!(t, expect);
        assert_eq!(net.contention_events, 0);
    }

    #[test]
    fn shared_link_serializes() {
        let machine = m();
        let mut net = NetworkState::new(&machine);
        // 0 -> 3 and 1 -> 3 share links (1->2, 2->3).
        let t1 = net.transfer(&machine, 0, 3, 4096, machine.params.serialize_ns(4096), 0);
        let t2 = net.transfer(&machine, 1, 3, 4096, machine.params.serialize_ns(4096), 0);
        assert!(t2 > t1, "second transfer must wait for the shared link");
        assert_eq!(net.contention_events, 1);
        assert!(net.contention_ns > 0);
    }

    #[test]
    fn disjoint_routes_do_not_interact() {
        let machine = m();
        let mut net = NetworkState::new(&machine);
        // 0 -> 1 (top-left) and 14 -> 15 (bottom-right) are disjoint.
        let t1 = net.transfer(&machine, 0, 1, 4096, machine.params.serialize_ns(4096), 0);
        let t2 = net.transfer(&machine, 14, 15, 4096, machine.params.serialize_ns(4096), 0);
        assert_eq!(t1, t2);
        assert_eq!(net.contention_events, 0);
    }

    #[test]
    fn opposite_directions_do_not_collide() {
        let machine = m();
        let mut net = NetworkState::new(&machine);
        let t1 = net.transfer(&machine, 0, 1, 4096, machine.params.serialize_ns(4096), 0);
        let t2 = net.transfer(&machine, 1, 0, 4096, machine.params.serialize_ns(4096), 0);
        // Bidirectional exchange: both directions proceed in parallel,
        // but node ports are also resources; 1's in-port (t1) and 1's
        // out-port (t2) are distinct, so no serialization here.
        assert_eq!(t1, t2);
    }

    #[test]
    fn ejection_port_is_a_hot_spot() {
        // Many senders to one destination serialize at its in-port even if
        // their routes are otherwise disjoint — the 2-Step bottleneck.
        let machine = Machine::paragon(1, 8);
        let mut net = NetworkState::new(&machine);
        let mut last = 0;
        for src in 1..8 {
            let t = net.transfer(&machine, src, 0, 8192, machine.params.serialize_ns(8192), 0);
            assert!(t > last);
            last = t;
        }
        assert!(net.contention_events >= 6);
    }

    #[test]
    fn self_send_uses_memcpy_cost() {
        let machine = m();
        let mut net = NetworkState::new(&machine);
        let t = net.transfer(&machine, 5, 5, 2048, machine.params.serialize_ns(2048), 100);
        assert_eq!(t, 100 + machine.params.memcpy_ns(2048));
        assert_eq!(net.contention_events, 0);
    }

    #[test]
    fn circuit_model_holds_whole_route() {
        use mpp_model::{MachineParams, MeshShape, Placement, Topology};
        let mut params = MachineParams::paragon_nx();
        params.contention = ContentionModel::Circuit;
        let machine = Machine::new(
            "circuit",
            Topology::Mesh2D { rows: 1, cols: 8 },
            params,
            Placement::Identity,
            MeshShape::new(1, 8),
        );
        let mut net_c = NetworkState::new(&machine);
        let wire = machine.params.serialize_ns(8192);
        // long transfer 0 -> 7 holds every link until done...
        let t1 = net_c.transfer(&machine, 0, 7, 8192, wire, 0);
        // ... so a later short transfer on the tail link waits for it.
        let t2 = net_c.transfer(&machine, 6, 7, 64, machine.params.serialize_ns(64), 0);
        assert!(t2 > t1, "circuit model must block the tail link until {t1}");

        // Under the shared (bandwidth-server) model the tail link frees
        // after only the hardware-rate window, so the short transfer
        // overtakes the long one.
        let mut sp = MachineParams::paragon_nx();
        sp.contention = ContentionModel::Shared;
        let sm = Machine::new(
            "shared",
            Topology::Mesh2D { rows: 1, cols: 8 },
            sp,
            Placement::Identity,
            MeshShape::new(1, 8),
        );
        let mut net_s = NetworkState::new(&sm);
        // Long transfer passes *through* node 6; a short transfer into
        // node 6 shares only the (5,6) link, which under the shared
        // model is held for the hardware-rate window, not the whole
        // software-rate drain.
        let q1 = net_s.transfer(&sm, 0, 7, 8192, sm.params.serialize_ns(8192), 0);
        let q2 = net_s.transfer(&sm, 5, 6, 64, sm.params.serialize_ns(64), 0);
        assert!(
            q2 < q1 / 2,
            "shared model should let the short transfer through: {q2} vs {q1}"
        );
    }

    #[test]
    fn shared_port_release_respects_stalled_head() {
        use mpp_model::{MachineParams, MeshShape, Placement, Topology};
        let mut params = MachineParams::paragon_nx();
        params.contention = ContentionModel::Shared;
        let machine = Machine::new(
            "shared",
            Topology::Mesh2D { rows: 1, cols: 8 },
            params,
            Placement::Identity,
            MeshShape::new(1, 8),
        );
        let tau = machine.params.tau_hop_ns;
        let mut net = NetworkState::new(&machine);
        // Congest a middle link with a fat transfer ...
        net.transfer(
            &machine,
            3,
            4,
            1 << 20,
            machine.params.serialize_ns(1 << 20),
            0,
        );
        // ... so a small 0 -> 7 message queues its head behind it.
        let b = net.transfer(&machine, 0, 7, 64, machine.params.serialize_ns(64), 0);
        assert!(
            b > machine.params.link_ns(1 << 20),
            "head should queue behind the fat transfer"
        );
        // Back-to-back second send from the same source: the injection
        // port is only released once the stalled first message drained
        // into the network, so the second send cannot overtake the
        // congestion (the bug released the port at port_free + wire_ns,
        // letting this complete almost immediately).
        let c = net.transfer(&machine, 0, 1, 64, machine.params.serialize_ns(64), 0);
        assert!(
            c + 6 * tau >= b,
            "second send finished at {c} despite first stalled until {b}"
        );
    }

    #[test]
    fn same_ready_transfers_take_ascending_port_slots() {
        // The multi-port batch contract: k transfers handed to the
        // network at the same ready instant (one `send_batch`) must
        // occupy the k injection slots in deterministic ascending order
        // of issue — the property that keeps coop and threaded
        // recordings byte-identical and lets the cost engine re-derive
        // the slot assignment from the recording alone.
        use mpp_model::MachineParams;
        let machine = Machine::new(
            "Paragon 4x4 (5-port)",
            mpp_model::Topology::Mesh2D { rows: 4, cols: 4 },
            MachineParams::paragon_nx().with_ports(5),
            mpp_model::Placement::Identity,
            mpp_model::MeshShape::new(4, 4),
        );
        let mut net = NetworkState::new(&machine);
        net.witness_on = true;
        let ready = 46_000;
        for (i, dst) in [1usize, 4, 5, 2, 8].into_iter().enumerate() {
            net.transfer(
                &machine,
                0,
                dst,
                4096,
                machine.params.serialize_ns(4096),
                ready,
            );
            assert_eq!(
                net.witness.out_slot, i,
                "batch member {i} (0 -> {dst}) must take injection slot {i}"
            );
            assert_eq!(net.witness.ready_ns, ready);
        }
    }

    #[test]
    fn out_port_serializes_back_to_back_sends() {
        let machine = m();
        let mut net = NetworkState::new(&machine);
        let t1 = net.transfer(&machine, 0, 1, 65536, machine.params.serialize_ns(65536), 0);
        // Different destination, same sender: injection port busy.
        let t2 = net.transfer(&machine, 0, 4, 65536, machine.params.serialize_ns(65536), 0);
        assert!(t2 > t1);
    }
}

//! Shared-ownership message payloads (the zero-copy message path).
//!
//! A [`Payload`] is a *rope*: an ordered list of segments, each a
//! `(Arc<[u8]>, start, len)` view into immutable shared storage. The
//! operations the broadcast algorithms are built from — forwarding a
//! received message, combining `k` message sets into one, slicing a
//! combined set back apart — become O(segments) pointer pushes instead
//! of O(total bytes) memcpy:
//!
//! * [`Payload::clone`] clones `Arc` pointers, never bytes.
//! * [`Payload::append`] / [`Payload::push_payload`] splice segment
//!   lists.
//! * [`Payload::slice`] re-slices existing segments.
//!
//! Bytes are only copied at the boundary where contiguous storage is
//! genuinely required ([`Payload::from_slice`], [`Payload::to_vec`],
//! [`Payload::contiguous`] on a fragmented rope). Every such copy is
//! counted in process-global [`copy_metrics`], which the benchmarks and
//! the zero-copy regression tests read to prove the fast path stays
//! fast.

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static BYTES_COPIED: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Process-wide copy accounting for the payload layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyMetrics {
    /// Total bytes physically memcpy'd through payload APIs.
    pub bytes_copied: u64,
    /// Number of fresh backing-store allocations.
    pub allocs: u64,
}

/// Snapshot the global copy counters.
pub fn copy_metrics() -> CopyMetrics {
    CopyMetrics {
        bytes_copied: BYTES_COPIED.load(Ordering::Relaxed),
        allocs: ALLOCS.load(Ordering::Relaxed),
    }
}

impl CopyMetrics {
    /// Counter movement since an earlier snapshot.
    pub fn since(&self, earlier: &CopyMetrics) -> CopyMetrics {
        CopyMetrics {
            bytes_copied: self.bytes_copied.wrapping_sub(earlier.bytes_copied),
            allocs: self.allocs.wrapping_sub(earlier.allocs),
        }
    }
}

fn note_copy(bytes: usize) {
    BYTES_COPIED.fetch_add(bytes as u64, Ordering::Relaxed);
    ALLOCS.fetch_add(1, Ordering::Relaxed);
}

#[derive(Clone)]
struct Segment {
    data: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl Segment {
    #[inline]
    fn bytes(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }
}

/// An immutable byte string with shared ownership and O(1)-per-segment
/// structural operations. See the module docs.
#[derive(Clone, Default)]
pub struct Payload {
    segs: Vec<Segment>,
    len: usize,
}

impl Payload {
    /// The empty payload.
    pub fn new() -> Self {
        Payload {
            segs: Vec::new(),
            len: 0,
        }
    }

    /// Wrap an owned buffer. One backing allocation; the bytes are moved
    /// into shared storage (counted as one copy — `Arc<[u8]>` requires
    /// its header inline with the data).
    pub fn from_vec(v: Vec<u8>) -> Self {
        if v.is_empty() {
            return Payload::new();
        }
        note_copy(v.len());
        Payload::from_arc(Arc::from(v))
    }

    /// Copy a borrowed slice into fresh shared storage.
    pub fn from_slice(data: &[u8]) -> Self {
        if data.is_empty() {
            return Payload::new();
        }
        note_copy(data.len());
        Payload::from_arc(Arc::from(data))
    }

    /// Wrap existing shared storage without copying.
    pub fn from_arc(data: Arc<[u8]>) -> Self {
        let len = data.len();
        if len == 0 {
            return Payload::new();
        }
        Payload {
            segs: vec![Segment {
                data,
                start: 0,
                len,
            }],
            len,
        }
    }

    /// Total byte length.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of rope segments (1 means contiguous).
    #[inline]
    pub fn segment_count(&self) -> usize {
        self.segs.len()
    }

    /// Append another payload by reference: O(segments of `other`)
    /// pointer clones, zero byte copies.
    pub fn push_payload(&mut self, other: &Payload) {
        self.segs.extend(other.segs.iter().cloned());
        self.len += other.len;
    }

    /// Append an owned payload: splices the segment list, zero copies.
    pub fn append(&mut self, other: Payload) {
        self.len += other.len;
        self.segs.extend(other.segs);
    }

    /// Zero-copy sub-range view. O(segments).
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, start: usize, end: usize) -> Payload {
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} of {} bytes",
            self.len
        );
        let mut out = Payload::new();
        let mut pos = 0usize;
        for seg in &self.segs {
            let seg_end = pos + seg.len;
            if seg_end > start && pos < end {
                let from = start.max(pos) - pos;
                let to = end.min(seg_end) - pos;
                out.segs.push(Segment {
                    data: Arc::clone(&seg.data),
                    start: seg.start + from,
                    len: to - from,
                });
                out.len += to - from;
            }
            pos = seg_end;
            if pos >= end {
                break;
            }
        }
        out
    }

    /// Iterate the rope's contiguous chunks in order.
    pub fn chunks(&self) -> impl Iterator<Item = &[u8]> {
        self.segs.iter().map(|s| s.bytes())
    }

    /// Iterate all bytes in order (no materialization).
    pub fn iter_bytes(&self) -> impl Iterator<Item = u8> + '_ {
        self.segs.iter().flat_map(|s| s.bytes().iter().copied())
    }

    /// Materialize into an owned `Vec` (copies all bytes).
    pub fn to_vec(&self) -> Vec<u8> {
        if self.len > 0 {
            note_copy(self.len);
        }
        let mut out = Vec::with_capacity(self.len);
        for seg in &self.segs {
            out.extend_from_slice(seg.bytes());
        }
        out
    }

    /// A contiguous view: borrows when the rope is a single segment,
    /// otherwise materializes a copy.
    pub fn contiguous(&self) -> Cow<'_, [u8]> {
        match self.segs.as_slice() {
            [] => Cow::Borrowed(&[]),
            [one] => Cow::Borrowed(one.bytes()),
            _ => Cow::Owned(self.to_vec()),
        }
    }

    /// Sequential reader over the rope (used by wire-format parsers).
    pub fn reader(&self) -> PayloadReader<'_> {
        PayloadReader {
            payload: self,
            pos: 0,
        }
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Payload({} bytes, {} segs)", self.len, self.segs.len())
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Payload) -> bool {
        self.len == other.len && self.iter_bytes().eq(other.iter_bytes())
    }
}

impl Eq for Payload {}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.len == other.len() && self.iter_bytes().eq(other.iter().copied())
    }
}

impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        self == *other
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Payload {
    fn eq(&self, other: &[u8; N]) -> bool {
        self == other.as_slice()
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Payload {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self == other.as_slice()
    }
}

// Accessors like `MessageSet::get` hand out `&Payload`; std's blanket
// `&A == &B` impl doesn't cover `&Payload == Vec<u8>`, so spell it out.
impl PartialEq<Vec<u8>> for &Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self == other.as_slice()
    }
}

impl PartialEq<Payload> for Vec<u8> {
    fn eq(&self, other: &Payload) -> bool {
        other == self.as_slice()
    }
}

impl PartialEq<Payload> for [u8] {
    fn eq(&self, other: &Payload) -> bool {
        other == self
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload::from_vec(v)
    }
}

impl From<&[u8]> for Payload {
    fn from(s: &[u8]) -> Self {
        Payload::from_slice(s)
    }
}

impl<const N: usize> From<&[u8; N]> for Payload {
    fn from(s: &[u8; N]) -> Self {
        Payload::from_slice(s)
    }
}

impl From<Arc<[u8]>> for Payload {
    fn from(a: Arc<[u8]>) -> Self {
        Payload::from_arc(a)
    }
}

/// Cursor over a [`Payload`]; header reads copy only the bytes asked
/// for, sub-payload reads are zero-copy slices.
pub struct PayloadReader<'a> {
    payload: &'a Payload,
    pos: usize,
}

impl PayloadReader<'_> {
    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.payload.len - self.pos
    }

    /// Read `buf.len()` bytes into `buf`. Returns false (consuming
    /// nothing) if not enough bytes remain.
    pub fn read_exact(&mut self, buf: &mut [u8]) -> bool {
        if self.remaining() < buf.len() {
            return false;
        }
        let mut written = 0usize;
        let mut pos = 0usize;
        for seg in &self.payload.segs {
            let seg_end = pos + seg.len;
            if seg_end > self.pos && written < buf.len() {
                let from = self.pos.max(pos) - pos;
                let want = (buf.len() - written).min(seg.len - from);
                buf[written..written + want].copy_from_slice(&seg.bytes()[from..from + want]);
                written += want;
                self.pos += want;
            }
            pos = seg_end;
            if written == buf.len() {
                break;
            }
        }
        true
    }

    /// Read a little-endian u32, or None if exhausted.
    pub fn read_u32_le(&mut self) -> Option<u32> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b).then(|| u32::from_le_bytes(b))
    }

    /// Take the next `n` bytes as a zero-copy sub-payload, or None if
    /// fewer remain.
    pub fn take_payload(&mut self, n: usize) -> Option<Payload> {
        if self.remaining() < n {
            return None;
        }
        let out = self.payload.slice(self.pos, self.pos + n);
        self.pos += n;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rope_concat_is_zero_copy() {
        let a = Payload::from_slice(b"hello ");
        let b = Payload::from_slice(b"world");
        let before = copy_metrics();
        let mut c = a.clone();
        c.push_payload(&b);
        let d = c.clone();
        let delta = copy_metrics().since(&before);
        assert_eq!(delta.bytes_copied, 0, "clone/concat must not copy bytes");
        assert_eq!(d, b"hello world");
        assert_eq!(d.len(), 11);
        assert_eq!(d.segment_count(), 2);
    }

    #[test]
    fn slice_respects_segment_boundaries() {
        let mut p = Payload::from_slice(b"abcd");
        p.push_payload(&Payload::from_slice(b"efgh"));
        p.push_payload(&Payload::from_slice(b"ijkl"));
        assert_eq!(p.slice(0, 12), *b"abcdefghijkl");
        assert_eq!(p.slice(2, 10), b"cdefghij");
        assert_eq!(p.slice(4, 8), b"efgh");
        assert_eq!(p.slice(5, 5).len(), 0);
        let before = copy_metrics();
        let _ = p.slice(1, 11);
        assert_eq!(copy_metrics().since(&before).bytes_copied, 0);
    }

    #[test]
    fn reader_spans_segments() {
        let mut p = Payload::new();
        p.push_payload(&Payload::from_slice(&7u32.to_le_bytes()[..2]));
        p.push_payload(&Payload::from_slice(&7u32.to_le_bytes()[2..]));
        p.push_payload(&Payload::from_slice(b"payload"));
        let mut r = p.reader();
        assert_eq!(r.read_u32_le(), Some(7));
        let body = r.take_payload(7).unwrap();
        assert_eq!(body, b"payload");
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.read_u32_le(), None);
    }

    #[test]
    fn equality_ignores_segmentation() {
        let flat = Payload::from_slice(b"xyzw");
        let mut rope = Payload::from_slice(b"xy");
        rope.push_payload(&Payload::from_slice(b"zw"));
        assert_eq!(flat, rope);
        assert_eq!(rope, b"xyzw");
        assert_eq!(rope, vec![b'x', b'y', b'z', b'w']);
        assert_ne!(rope, b"xyzv");
        assert_ne!(rope, b"xyz");
    }

    #[test]
    fn to_vec_counts_the_copy() {
        let p = Payload::from_slice(&[9u8; 100]);
        let before = copy_metrics();
        let v = p.to_vec();
        let delta = copy_metrics().since(&before);
        assert_eq!(v.len(), 100);
        assert!(delta.bytes_copied >= 100);
    }

    #[test]
    fn contiguous_borrows_single_segment() {
        let p = Payload::from_slice(b"one-seg");
        let before = copy_metrics();
        assert!(matches!(p.contiguous(), Cow::Borrowed(b"one-seg")));
        assert_eq!(copy_metrics().since(&before).bytes_copied, 0);
    }
}

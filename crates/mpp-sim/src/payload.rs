//! Shared-ownership message payloads (the zero-copy message path).
//!
//! A [`Payload`] is a *rope*: an ordered list of segments, each a
//! `(backing, start, len)` view into immutable shared storage. The
//! operations the broadcast algorithms are built from — forwarding a
//! received message, combining `k` message sets into one, slicing a
//! combined set back apart — become O(segments) pointer pushes instead
//! of O(total bytes) memcpy:
//!
//! * [`Payload::clone`] clones shared pointers, never bytes.
//! * [`Payload::append`] / [`Payload::push_payload`] splice segment
//!   lists.
//! * [`Payload::slice`] re-slices existing segments.
//!
//! Bytes are only copied at the boundary where contiguous storage is
//! genuinely required ([`Payload::from_slice`], [`Payload::to_vec`],
//! [`Payload::contiguous`] on a fragmented rope). Every such copy is
//! counted in process-global [`copy_metrics`], which the benchmarks and
//! the zero-copy regression tests read to prove the fast path stays
//! fast.
//!
//! # Backing-store arenas
//!
//! Payload construction ([`Payload::from_slice`] / [`Payload::from_vec`])
//! copies bytes into a *thread-local bump arena*: a chain of fixed-size
//! chunks shared by `Arc`. A fresh heap allocation (counted in
//! [`CopyMetrics::allocs`]) happens only when a chunk fills; retired
//! chunks whose payloads have all been dropped are reset and reused, so
//! a steady-state experiment allocates (nearly) nothing per run. The
//! arena is per-thread, which also pins each sweep worker to its own
//! arena — parallel sweeps never contend on a shared allocator for
//! payload storage.
//!
//! Single-segment payloads are stored inline (no `Vec` of segments);
//! multi-segment ropes draw their segment vectors from a thread-local
//! pool that [`Payload`]'s `Drop` refills, so rope nodes are recycled
//! rather than reallocated.

use std::borrow::Cow;
use std::cell::RefCell;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static BYTES_COPIED: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Process-wide copy accounting for the payload layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyMetrics {
    /// Total bytes physically memcpy'd through payload APIs.
    pub bytes_copied: u64,
    /// Number of fresh backing-store allocations (arena chunks and
    /// dedicated buffers; arena-chunk *reuse* is free).
    pub allocs: u64,
}

/// Snapshot the global copy counters.
pub fn copy_metrics() -> CopyMetrics {
    CopyMetrics {
        bytes_copied: BYTES_COPIED.load(Ordering::Relaxed),
        allocs: ALLOCS.load(Ordering::Relaxed),
    }
}

impl CopyMetrics {
    /// Counter movement since an earlier snapshot.
    pub fn since(&self, earlier: &CopyMetrics) -> CopyMetrics {
        CopyMetrics {
            bytes_copied: self.bytes_copied.wrapping_sub(earlier.bytes_copied),
            allocs: self.allocs.wrapping_sub(earlier.allocs),
        }
    }
}

fn note_copied(bytes: usize) {
    BYTES_COPIED.fetch_add(bytes as u64, Ordering::Relaxed);
}

fn note_alloc() {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Bump-arena backing store
// ---------------------------------------------------------------------

/// Bytes per arena chunk. Large enough that a typical experiment's
/// traffic fits in a handful of chunks; small enough that a retired
/// chunk pinned by one long-lived payload wastes little.
const CHUNK_BYTES: usize = 256 * 1024;

/// Payloads above this size get a dedicated exactly-sized chunk instead
/// of a slot in the shared chunk (they would evict too much bump space).
const DEDICATED_LIMIT: usize = CHUNK_BYTES / 4;

/// A fixed-capacity raw buffer. Frozen regions (below the owning
/// arena's bump offset) are immutable and read concurrently through
/// [`Segment`]s; the region at and above the offset is written only by
/// the one thread whose arena owns this chunk. All access is through
/// raw pointers derived from the original allocation, so disjoint
/// reads and writes never invalidate each other.
struct Chunk {
    ptr: NonNull<u8>,
    cap: usize,
}

// Readers only touch frozen (never-again-written) regions and the
// owning thread only writes unfrozen ones, so cross-thread sharing of
// disjoint ranges is sound.
unsafe impl Send for Chunk {}
unsafe impl Sync for Chunk {}

impl Chunk {
    fn new(cap: usize) -> Chunk {
        debug_assert!(cap > 0);
        note_alloc();
        let layout = std::alloc::Layout::array::<u8>(cap).expect("chunk layout");
        // SAFETY: `cap > 0`, so the layout is non-zero-sized.
        let raw = unsafe { std::alloc::alloc(layout) };
        let ptr = NonNull::new(raw).unwrap_or_else(|| std::alloc::handle_alloc_error(layout));
        Chunk { ptr, cap }
    }

    /// Shared view of a frozen range.
    ///
    /// # Safety
    /// The range must be frozen: fully written before any `Arc` clone
    /// of this chunk escaped with a segment covering it, and never
    /// written again until the chunk is reset with no segments alive.
    #[inline]
    unsafe fn frozen(&self, start: usize, len: usize) -> &[u8] {
        debug_assert!(start + len <= self.cap);
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr().add(start), len) }
    }
}

impl Drop for Chunk {
    fn drop(&mut self) {
        let layout = std::alloc::Layout::array::<u8>(self.cap).expect("chunk layout");
        // SAFETY: allocated in `Chunk::new` with the same layout.
        unsafe { std::alloc::dealloc(self.ptr.as_ptr(), layout) };
    }
}

/// Thread-local bump arena: one open chunk plus a pool of retired ones
/// awaiting reuse.
struct Arena {
    cur: Option<Arc<Chunk>>,
    used: usize,
    retired: Vec<Arc<Chunk>>,
}

/// Cap on retired chunks kept per thread (beyond this they are freed).
const RETIRED_KEEP: usize = 8;

impl Arena {
    const fn new() -> Arena {
        Arena {
            cur: None,
            used: 0,
            retired: Vec::new(),
        }
    }

    /// Copy `data` into arena storage and return a segment viewing it.
    fn store(&mut self, data: &[u8]) -> Segment {
        let len = data.len();
        debug_assert!(len > 0);
        if len > DEDICATED_LIMIT {
            let chunk = Arc::new(Chunk::new(len));
            // SAFETY: freshly allocated, no other reference exists.
            unsafe {
                std::ptr::copy_nonoverlapping(data.as_ptr(), chunk.ptr.as_ptr(), len);
            }
            return Segment {
                data: Backing::Arena(chunk),
                start: 0,
                len,
            };
        }
        let start = self.reserve(len);
        let chunk = self.cur.as_ref().expect("reserve leaves an open chunk");
        // SAFETY: `reserve` handed out a bump range no live segment
        // covers; `data` cannot alias it (unfrozen bytes are never
        // exposed). Disjoint raw-pointer writes don't disturb readers.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), chunk.ptr.as_ptr().add(start), len);
        }
        Segment {
            data: Backing::Arena(Arc::clone(chunk)),
            start,
            len,
        }
    }

    /// Bump-allocate `len` bytes; returns the start offset in `self.cur`.
    fn reserve(&mut self, len: usize) -> usize {
        if let Some(cur) = &self.cur {
            if cur.cap - self.used >= len {
                let start = self.used;
                self.used += len;
                return start;
            }
            let full = Arc::clone(cur);
            self.retired.push(full);
        }
        // Reuse a retired chunk whose payloads have all been dropped
        // (we hold the only reference), else allocate a fresh one.
        let mut reused = None;
        for i in 0..self.retired.len() {
            if Arc::strong_count(&self.retired[i]) == 1 {
                reused = Some(self.retired.swap_remove(i));
                break;
            }
        }
        if self.retired.len() > RETIRED_KEEP {
            // Everything still pinned by live payloads: stop tracking
            // the oldest (it frees itself when its payloads drop).
            self.retired.remove(0);
        }
        self.cur = Some(reused.unwrap_or_else(|| Arc::new(Chunk::new(CHUNK_BYTES))));
        self.used = len;
        0
    }
}

thread_local! {
    static ARENA: RefCell<Arena> = const { RefCell::new(Arena::new()) };
    /// Recycled (empty) segment vectors for multi-segment ropes.
    static SEG_POOL: RefCell<Vec<Vec<Segment>>> = const { RefCell::new(Vec::new()) };
}

/// Cap on pooled segment vectors per thread.
const SEG_POOL_KEEP: usize = 256;

fn pooled_vec(capacity: usize) -> Vec<Segment> {
    SEG_POOL.with_borrow_mut(|pool| {
        let mut v = pool.pop().unwrap_or_default();
        v.reserve(capacity);
        v
    })
}

fn recycle_vec(mut v: Vec<Segment>) {
    v.clear();
    SEG_POOL.with_borrow_mut(|pool| {
        if pool.len() < SEG_POOL_KEEP {
            pool.push(v);
        }
    });
}

// ---------------------------------------------------------------------
// Segments and the rope
// ---------------------------------------------------------------------

#[derive(Clone)]
enum Backing {
    /// Caller-provided shared storage ([`Payload::from_arc`]).
    Shared(Arc<[u8]>),
    /// A range of an arena chunk.
    Arena(Arc<Chunk>),
}

#[derive(Clone)]
struct Segment {
    data: Backing,
    start: usize,
    len: usize,
}

impl Segment {
    #[inline]
    fn bytes(&self) -> &[u8] {
        match &self.data {
            Backing::Shared(arc) => &arc[self.start..self.start + self.len],
            // SAFETY: segments only ever view frozen arena ranges.
            Backing::Arena(chunk) => unsafe { chunk.frozen(self.start, self.len) },
        }
    }
}

/// Segment storage: single segments are inline (no heap node), ropes
/// spill to a pooled `Vec`.
enum Segs {
    Zero,
    One(Segment),
    Many(Vec<Segment>),
}

impl Segs {
    #[inline]
    fn as_slice(&self) -> &[Segment] {
        match self {
            Segs::Zero => &[],
            Segs::One(seg) => std::slice::from_ref(seg),
            Segs::Many(v) => v,
        }
    }

    fn push(&mut self, seg: Segment) {
        match self {
            Segs::Zero => *self = Segs::One(seg),
            Segs::One(_) => {
                let Segs::One(first) = std::mem::replace(self, Segs::Zero) else {
                    unreachable!()
                };
                let mut v = pooled_vec(4);
                v.push(first);
                v.push(seg);
                *self = Segs::Many(v);
            }
            Segs::Many(v) => v.push(seg),
        }
    }
}

impl Clone for Segs {
    fn clone(&self) -> Segs {
        match self {
            Segs::Zero => Segs::Zero,
            Segs::One(seg) => Segs::One(seg.clone()),
            Segs::Many(v) => {
                let mut out = pooled_vec(v.len());
                out.extend(v.iter().cloned());
                Segs::Many(out)
            }
        }
    }
}

/// An immutable byte string with shared ownership and O(1)-per-segment
/// structural operations. See the module docs.
#[derive(Clone)]
pub struct Payload {
    segs: Segs,
    len: usize,
}

// Return multi-segment rope nodes to the thread-local pool instead of
// freeing them. `Segs` itself has no `Drop` impl, so the replaced-out
// value drops without re-entering this.
impl Drop for Payload {
    fn drop(&mut self) {
        if let Segs::Many(v) = std::mem::replace(&mut self.segs, Segs::Zero) {
            recycle_vec(v);
        }
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload::new()
    }
}

impl Payload {
    /// The empty payload.
    pub fn new() -> Self {
        Payload {
            segs: Segs::Zero,
            len: 0,
        }
    }

    /// Wrap an owned buffer. The bytes are copied into the thread's
    /// payload arena (counted as one copy); the `Vec` is dropped.
    pub fn from_vec(v: Vec<u8>) -> Self {
        Payload::from_slice(&v)
    }

    /// Copy a borrowed slice into shared arena storage.
    pub fn from_slice(data: &[u8]) -> Self {
        if data.is_empty() {
            return Payload::new();
        }
        note_copied(data.len());
        let seg = ARENA.with_borrow_mut(|a| a.store(data));
        Payload {
            len: seg.len,
            segs: Segs::One(seg),
        }
    }

    /// Wrap existing shared storage without copying.
    pub fn from_arc(data: Arc<[u8]>) -> Self {
        let len = data.len();
        if len == 0 {
            return Payload::new();
        }
        Payload {
            segs: Segs::One(Segment {
                data: Backing::Shared(data),
                start: 0,
                len,
            }),
            len,
        }
    }

    /// Total byte length.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of rope segments (1 means contiguous).
    #[inline]
    pub fn segment_count(&self) -> usize {
        self.segs.as_slice().len()
    }

    /// Append another payload by reference: O(segments of `other`)
    /// pointer clones, zero byte copies.
    pub fn push_payload(&mut self, other: &Payload) {
        for seg in other.segs.as_slice() {
            self.segs.push(seg.clone());
        }
        self.len += other.len;
    }

    /// Append an owned payload: splices the segment list, zero copies.
    pub fn append(&mut self, mut other: Payload) {
        self.len += other.len;
        match std::mem::replace(&mut other.segs, Segs::Zero) {
            Segs::Zero => {}
            Segs::One(seg) => self.segs.push(seg),
            Segs::Many(v) => {
                if matches!(self.segs, Segs::Zero) {
                    self.segs = Segs::Many(v);
                } else {
                    for seg in &v {
                        self.segs.push(seg.clone());
                    }
                    recycle_vec(v);
                }
            }
        }
    }

    /// Zero-copy sub-range view. O(segments).
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, start: usize, end: usize) -> Payload {
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} of {} bytes",
            self.len
        );
        let mut out = Payload::new();
        let mut pos = 0usize;
        for seg in self.segs.as_slice() {
            let seg_end = pos + seg.len;
            if seg_end > start && pos < end {
                let from = start.max(pos) - pos;
                let to = end.min(seg_end) - pos;
                out.segs.push(Segment {
                    data: seg.data.clone(),
                    start: seg.start + from,
                    len: to - from,
                });
                out.len += to - from;
            }
            pos = seg_end;
            if pos >= end {
                break;
            }
        }
        out
    }

    /// Iterate the rope's contiguous chunks in order.
    pub fn chunks(&self) -> impl Iterator<Item = &[u8]> {
        self.segs.as_slice().iter().map(|s| s.bytes())
    }

    /// Iterate all bytes in order (no materialization).
    pub fn iter_bytes(&self) -> impl Iterator<Item = u8> + '_ {
        self.segs
            .as_slice()
            .iter()
            .flat_map(|s| s.bytes().iter().copied())
    }

    /// Materialize into an owned `Vec` (copies all bytes).
    pub fn to_vec(&self) -> Vec<u8> {
        if self.len > 0 {
            note_copied(self.len);
            note_alloc();
        }
        let mut out = Vec::with_capacity(self.len);
        for seg in self.segs.as_slice() {
            out.extend_from_slice(seg.bytes());
        }
        out
    }

    /// A contiguous view: borrows when the rope is a single segment,
    /// otherwise materializes a copy.
    pub fn contiguous(&self) -> Cow<'_, [u8]> {
        match self.segs.as_slice() {
            [] => Cow::Borrowed(&[]),
            [one] => Cow::Borrowed(one.bytes()),
            _ => Cow::Owned(self.to_vec()),
        }
    }

    /// Sequential reader over the rope (used by wire-format parsers).
    pub fn reader(&self) -> PayloadReader<'_> {
        PayloadReader {
            payload: self,
            pos: 0,
            seg: 0,
            seg_off: 0,
        }
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Payload({} bytes, {} segs)",
            self.len,
            self.segment_count()
        )
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Payload) -> bool {
        self.len == other.len && self.iter_bytes().eq(other.iter_bytes())
    }
}

impl Eq for Payload {}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.len == other.len() && self.iter_bytes().eq(other.iter().copied())
    }
}

impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        self == *other
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Payload {
    fn eq(&self, other: &[u8; N]) -> bool {
        self == other.as_slice()
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Payload {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self == other.as_slice()
    }
}

// Accessors like `MessageSet::get` hand out `&Payload`; std's blanket
// `&A == &B` impl doesn't cover `&Payload == Vec<u8>`, so spell it out.
impl PartialEq<Vec<u8>> for &Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self == other.as_slice()
    }
}

impl PartialEq<Payload> for Vec<u8> {
    fn eq(&self, other: &Payload) -> bool {
        other == self.as_slice()
    }
}

impl PartialEq<Payload> for [u8] {
    fn eq(&self, other: &Payload) -> bool {
        other == self
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload::from_vec(v)
    }
}

impl From<&[u8]> for Payload {
    fn from(s: &[u8]) -> Self {
        Payload::from_slice(s)
    }
}

impl<const N: usize> From<&[u8; N]> for Payload {
    fn from(s: &[u8; N]) -> Self {
        Payload::from_slice(s)
    }
}

impl From<Arc<[u8]>> for Payload {
    fn from(a: Arc<[u8]>) -> Self {
        Payload::from_arc(a)
    }
}

/// Cursor over a [`Payload`]; header reads copy only the bytes asked
/// for, sub-payload reads are zero-copy slices.
///
/// The cursor tracks its position as a `(segment index, offset)` pair,
/// so a strictly-forward parse is O(total segments) overall — each read
/// resumes where the previous one stopped instead of rescanning the
/// rope from the front (which made wire parses of n-entry message sets
/// quadratic in the segment count).
pub struct PayloadReader<'a> {
    payload: &'a Payload,
    pos: usize,
    /// Segment containing `pos` (== segment count when exhausted).
    seg: usize,
    /// Byte offset of `pos` within that segment.
    seg_off: usize,
}

impl PayloadReader<'_> {
    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.payload.len - self.pos
    }

    /// Read `buf.len()` bytes into `buf`. Returns false (consuming
    /// nothing) if not enough bytes remain.
    pub fn read_exact(&mut self, buf: &mut [u8]) -> bool {
        if self.remaining() < buf.len() {
            return false;
        }
        let segs = self.payload.segs.as_slice();
        let mut written = 0usize;
        let (mut seg, mut seg_off) = (self.seg, self.seg_off);
        while written < buf.len() {
            let bytes = segs[seg].bytes();
            let want = (buf.len() - written).min(bytes.len() - seg_off);
            buf[written..written + want].copy_from_slice(&bytes[seg_off..seg_off + want]);
            written += want;
            seg_off += want;
            if seg_off == bytes.len() {
                seg += 1;
                seg_off = 0;
            }
        }
        self.pos += buf.len();
        self.seg = seg;
        self.seg_off = seg_off;
        true
    }

    /// Read a little-endian u32, or None if exhausted.
    pub fn read_u32_le(&mut self) -> Option<u32> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b).then(|| u32::from_le_bytes(b))
    }

    /// Take the next `n` bytes as a zero-copy sub-payload, or None if
    /// fewer remain.
    pub fn take_payload(&mut self, n: usize) -> Option<Payload> {
        if self.remaining() < n {
            return None;
        }
        if n == 0 {
            return Some(Payload::new());
        }
        let segs = self.payload.segs.as_slice();
        let mut out = Payload::new();
        let (mut seg, mut seg_off) = (self.seg, self.seg_off);
        let mut need = n;
        while need > 0 {
            let s = &segs[seg];
            let take = need.min(s.len - seg_off);
            out.segs.push(Segment {
                data: s.data.clone(),
                start: s.start + seg_off,
                len: take,
            });
            out.len += take;
            need -= take;
            seg_off += take;
            if seg_off == s.len {
                seg += 1;
                seg_off = 0;
            }
        }
        self.pos += n;
        self.seg = seg;
        self.seg_off = seg_off;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The copy counters are process-global; serialise every test that
    // asserts on counter deltas.
    static METRICS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        METRICS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn rope_concat_is_zero_copy() {
        let _g = lock();
        let a = Payload::from_slice(b"hello ");
        let b = Payload::from_slice(b"world");
        let before = copy_metrics();
        let mut c = a.clone();
        c.push_payload(&b);
        let d = c.clone();
        let delta = copy_metrics().since(&before);
        assert_eq!(delta.bytes_copied, 0, "clone/concat must not copy bytes");
        assert_eq!(d, b"hello world");
        assert_eq!(d.len(), 11);
        assert_eq!(d.segment_count(), 2);
    }

    #[test]
    fn slice_respects_segment_boundaries() {
        let _g = lock();
        let mut p = Payload::from_slice(b"abcd");
        p.push_payload(&Payload::from_slice(b"efgh"));
        p.push_payload(&Payload::from_slice(b"ijkl"));
        assert_eq!(p.slice(0, 12), *b"abcdefghijkl");
        assert_eq!(p.slice(2, 10), b"cdefghij");
        assert_eq!(p.slice(4, 8), b"efgh");
        assert_eq!(p.slice(5, 5).len(), 0);
        let before = copy_metrics();
        let _ = p.slice(1, 11);
        assert_eq!(copy_metrics().since(&before).bytes_copied, 0);
    }

    #[test]
    fn reader_spans_segments() {
        let mut p = Payload::new();
        p.push_payload(&Payload::from_slice(&7u32.to_le_bytes()[..2]));
        p.push_payload(&Payload::from_slice(&7u32.to_le_bytes()[2..]));
        p.push_payload(&Payload::from_slice(b"payload"));
        let mut r = p.reader();
        assert_eq!(r.read_u32_le(), Some(7));
        let body = r.take_payload(7).unwrap();
        assert_eq!(body, b"payload");
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.read_u32_le(), None);
    }

    #[test]
    fn equality_ignores_segmentation() {
        let flat = Payload::from_slice(b"xyzw");
        let mut rope = Payload::from_slice(b"xy");
        rope.push_payload(&Payload::from_slice(b"zw"));
        assert_eq!(flat, rope);
        assert_eq!(rope, b"xyzw");
        assert_eq!(rope, vec![b'x', b'y', b'z', b'w']);
        assert_ne!(rope, b"xyzv");
        assert_ne!(rope, b"xyz");
    }

    #[test]
    fn to_vec_counts_the_copy() {
        let _g = lock();
        let p = Payload::from_slice(&[9u8; 100]);
        let before = copy_metrics();
        let v = p.to_vec();
        let delta = copy_metrics().since(&before);
        assert_eq!(v.len(), 100);
        assert!(delta.bytes_copied >= 100);
    }

    #[test]
    fn contiguous_borrows_single_segment() {
        let _g = lock();
        let p = Payload::from_slice(b"one-seg");
        let before = copy_metrics();
        assert!(matches!(p.contiguous(), Cow::Borrowed(b"one-seg")));
        assert_eq!(copy_metrics().since(&before).bytes_copied, 0);
    }

    #[test]
    fn from_arc_is_zero_copy_and_alloc_free() {
        let _g = lock();
        let storage: Arc<[u8]> = Arc::from(&b"shared"[..]);
        let before = copy_metrics();
        let p = Payload::from_arc(Arc::clone(&storage));
        let delta = copy_metrics().since(&before);
        assert_eq!(delta.bytes_copied, 0);
        assert_eq!(delta.allocs, 0);
        assert_eq!(p, b"shared");
    }

    #[test]
    fn arena_reuses_chunks_across_generations() {
        let _g = lock();
        // Warm the arena, drop everything, and check that a second
        // wave of payloads allocates no fresh chunks.
        let warm: Vec<Payload> = (0..64).map(|_| Payload::from_slice(&[7u8; 512])).collect();
        drop(warm);
        let before = copy_metrics();
        let wave: Vec<Payload> = (0..64).map(|_| Payload::from_slice(&[8u8; 512])).collect();
        let delta = copy_metrics().since(&before);
        assert_eq!(
            delta.allocs, 0,
            "retired chunks must be reused, not reallocated"
        );
        assert!(wave.iter().all(|p| p == &[8u8; 512][..]));
    }

    #[test]
    fn oversized_payloads_get_dedicated_chunks() {
        let _g = lock();
        let big = vec![3u8; DEDICATED_LIMIT + 1];
        let before = copy_metrics();
        let p = Payload::from_slice(&big);
        let delta = copy_metrics().since(&before);
        assert_eq!(delta.bytes_copied as usize, big.len());
        assert_eq!(delta.allocs, 1, "one dedicated chunk");
        assert_eq!(p, *big.as_slice());
    }

    #[test]
    fn chunk_contents_survive_arena_turnover() {
        // A payload must keep its bytes while the arena moves on to
        // fresh chunks and reuses old ones.
        let keeper = Payload::from_slice(&[0xAA; 1000]);
        for _ in 0..(2 * CHUNK_BYTES / 1000) {
            let _ = Payload::from_slice(&[0xBB; 1000]);
        }
        assert_eq!(keeper, &[0xAA; 1000][..]);
    }

    #[test]
    fn append_and_clone_recycle_rope_nodes() {
        let mut a = Payload::from_slice(b"aa");
        a.append(Payload::from_slice(b"bb"));
        let b = a.clone();
        drop(a);
        let mut c = Payload::from_slice(b"cc");
        c.push_payload(&b);
        assert_eq!(c, b"ccaabb");
    }
}

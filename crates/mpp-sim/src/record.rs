//! Schedule recording: the raw material of static schedule analysis.
//!
//! When [`SimConfig::recorder`](crate::SimConfig) is set, the kernel
//! appends one [`ScheduleEvent`] per communication operation to the
//! shared [`ScheduleLog`]. The events form the *symbolic communication
//! schedule* of the program — who sends what to whom, with which tag, in
//! which iteration, and which concrete message every receive matched —
//! independent of the timing numbers themselves (virtual time is used
//! only to order wildcard matches, exactly as in an untraced run).
//!
//! `stp-analyzer` consumes this log to check the schedule as a graph:
//! deadlock cycles, unmatched sends, match ambiguity, payload-completeness
//! leaks, and per-link contention. Recording a run that deadlocks still
//! yields the partial schedule: the kernel flushes the log (with
//! [`ScheduleRecording::deadlocked`] set and one [`ScheduleEvent::Blocked`]
//! per stuck rank) before aborting, so the analyzer can catch the panic
//! and diagnose the cycle.

use std::sync::{Arc, Mutex};

use mpp_model::{Link, Time};

use crate::payload::Payload;
use crate::Tag;

/// Shared, thread-safe schedule log handle.
///
/// Clone one handle into [`SimConfig`](crate::SimConfig) and keep the
/// other; the kernel flushes events into it when the simulation finishes
/// *or* aborts on deadlock.
pub type ScheduleLog = Arc<Mutex<ScheduleRecording>>;

/// Create an empty [`ScheduleLog`].
pub fn schedule_log() -> ScheduleLog {
    Arc::new(Mutex::new(ScheduleRecording::default()))
}

// Per-thread pool of event buffers. Every `KernelCore` checks one out on
// construction and returns it (cleared, capacity intact) on drop, so a
// sweep of recorded runs allocates event storage only until the largest
// run has been seen once.
thread_local! {
    static EVENT_POOL: std::cell::RefCell<Vec<Vec<ScheduleEvent>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

const EVENT_POOL_KEEP: usize = 8;

/// Check an event buffer out of this thread's pool (empty, but warm).
pub(crate) fn pooled_events() -> Vec<ScheduleEvent> {
    EVENT_POOL
        .with(|pool| pool.borrow_mut().pop())
        .unwrap_or_default()
}

/// Return an event buffer to this thread's pool.
pub(crate) fn recycle_events(mut events: Vec<ScheduleEvent>) {
    events.clear();
    if events.capacity() == 0 {
        return;
    }
    EVENT_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < EVENT_POOL_KEEP {
            pool.push(events);
        }
    });
}

/// Everything recorded from one simulated run.
#[derive(Debug, Default)]
pub struct ScheduleRecording {
    /// Events in kernel processing order (deterministic).
    pub events: Vec<ScheduleEvent>,
    /// True when the run aborted because every live rank was blocked.
    pub deadlocked: bool,
}

impl ScheduleRecording {
    /// Number of send events.
    pub fn sends(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, ScheduleEvent::Send { .. }))
            .count()
    }

    /// Number of matched receive events.
    pub fn recvs(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, ScheduleEvent::Recv { .. }))
            .count()
    }
}

/// The busy window one transfer reserved on one directed link, in route
/// order. `from_ns`/`until_ns` bracket the interval the link was held;
/// their exact meaning follows the active
/// [`ContentionModel`](mpp_model::ContentionModel) (staggered wormhole
/// windows under `Pipelined`, the whole-route hold under `Circuit`, the
/// hardware-rate drain under `Shared`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkWindow {
    /// The directed link.
    pub link: Link,
    /// Start of the reserved window (ns).
    pub from_ns: Time,
    /// The link's new busy-until time (ns).
    pub until_ns: Time,
}

/// One communication operation, as the kernel processed it.
///
/// `step` is the issuing rank's iteration index — the number of
/// [`next_iteration`](crate::RankCtx::iter_mark) marks that rank had
/// recorded when the operation was issued. Algorithms call it once per
/// communication round, so `step` aligns with the paper's iterations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleEvent {
    /// A message handed to the network.
    Send {
        /// Sender's iteration index at issue time.
        step: u32,
        /// Global message sequence number (unique, issue-ordered).
        seq: u64,
        /// Sending rank.
        src: usize,
        /// Destination rank.
        dst: usize,
        /// Message tag.
        tag: Tag,
        /// The payload (shared rope — recording copies no bytes).
        data: Payload,
        /// The sender's virtual clock when it issued the send (ns) —
        /// the software-ready instant is `issue_ns + α_send`.
        issue_ns: Time,
    },
    /// The network's resource reservations for one delivered message —
    /// the timing ground truth the static cost engine replays against.
    /// Recorded once per *delivered* message (a message every attempt of
    /// which was dropped has no transfer).
    Xfer {
        /// Sequence number of the delivered message.
        seq: u64,
        /// Sending rank.
        src: usize,
        /// Destination rank.
        dst: usize,
        /// On-wire payload size (bytes).
        bytes: usize,
        /// The instant the message was handed to the network (ns):
        /// `issue + α_send`, plus retry backoff and fault-plan injection
        /// delay when a fault plan is active.
        ready_ns: Time,
        /// Head injection instant after port and link arbitration (ns).
        start_ns: Time,
        /// Arrival at the destination mailbox (ns).
        done_ns: Time,
        /// Delay beyond the resource-free traversal of the route (ns).
        stall_ns: Time,
        /// Injection-port slot reserved at the source node (`None` for a
        /// node-local memcpy delivery).
        out_slot: Option<usize>,
        /// Ejection-port slot reserved at the destination node.
        in_slot: Option<usize>,
        /// Per-hop link reservations, in route order (empty for a
        /// node-local delivery).
        windows: Vec<LinkWindow>,
    },
    /// A receive that matched a message.
    Recv {
        /// Receiver's iteration index at issue time.
        step: u32,
        /// Receiving rank.
        rank: usize,
        /// The receive's source filter (`None` = wildcard).
        src_filter: Option<usize>,
        /// The receive's tag filter (`None` = wildcard).
        tag_filter: Option<Tag>,
        /// Sequence number of the matched message.
        seq: u64,
        /// Sender of the matched message.
        src: usize,
        /// Tag of the matched message.
        tag: Tag,
        /// How many in-flight messages with the *same* `(src, tag)` sat
        /// in the mailbox at match time (including the matched one).
        /// `> 1` means delivery order decided which message this receive
        /// consumed — the match-ambiguity hazard the analyzer flags.
        dup_in_flight: usize,
        /// The receiver's virtual clock when the match was processed
        /// (ns); its post-receive clock is
        /// `max(start_ns, arrival_ns) + α_recv`.
        start_ns: Time,
        /// The matched message's mailbox arrival time (ns).
        arrival_ns: Time,
    },
    /// A rank closed a statistics iteration (`next_iteration`).
    IterEnd {
        /// The rank whose iteration counter advanced.
        rank: usize,
    },
    /// A rank was blocked in `recv` when the run deadlocked.
    Blocked {
        /// The stuck rank.
        rank: usize,
        /// Its receive's source filter.
        src_filter: Option<usize>,
        /// Its receive's tag filter.
        tag_filter: Option<Tag>,
    },
    /// A transmission attempt lost to the active fault plan (recorded
    /// once per lost attempt; the logical message keeps its single
    /// `Send` event).
    Dropped {
        /// Sequence number of the affected message.
        seq: u64,
        /// Sending rank.
        src: usize,
        /// Destination rank.
        dst: usize,
        /// Which attempt this was (0-based).
        attempt: u32,
        /// True when this was the final permitted attempt — the message
        /// is lost for good and will never reach `dst`'s mailbox.
        exhausted: bool,
    },
    /// A rank's program returned.
    Finished {
        /// The finishing rank.
        rank: usize,
        /// Messages still sitting undelivered in its mailbox — each is a
        /// send that can never be received.
        leftover: usize,
        /// The rank's final virtual clock (ns) — its completion time.
        finish_ns: Time,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_counts_events() {
        let mut rec = ScheduleRecording::default();
        rec.events.push(ScheduleEvent::Send {
            step: 0,
            seq: 1,
            src: 0,
            dst: 1,
            tag: 9,
            data: Payload::new(),
            issue_ns: 0,
        });
        rec.events.push(ScheduleEvent::Recv {
            step: 0,
            rank: 1,
            src_filter: Some(0),
            tag_filter: Some(9),
            seq: 1,
            src: 0,
            tag: 9,
            dup_in_flight: 1,
            start_ns: 0,
            arrival_ns: 500,
        });
        rec.events.push(ScheduleEvent::Finished {
            rank: 0,
            leftover: 0,
            finish_ns: 1000,
        });
        assert_eq!(rec.sends(), 1);
        assert_eq!(rec.recvs(), 1);
        assert!(!rec.deadlocked);
    }
}

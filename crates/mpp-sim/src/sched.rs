//! Indexed ready-queue for the cooperative executor.
//!
//! The threaded kernel picks the next rank to run with an O(p) scan over
//! every rank state per processed event. The cooperative executor
//! replaces that scan with a *calendar queue* keyed on virtual time:
//! entries inside the active time window live in a small array sorted
//! descending, so the next wakeup — and every same-tick wakeup behind
//! it — is an O(1) pop off the back; entries beyond the window wait in
//! an unsorted overflow bucket that is swept forward only when the
//! window advances. Simulated time in one experiment clusters tightly
//! (ranks march in α-spaced phases), so nearly every push lands in the
//! active window at O(log w) for a tiny `w`, and the heap's O(log p)
//! rebalancing per event disappears from the hot path.
//!
//! Like the binary-heap queue it replaces (kept below as
//! [`HeapReadyQueue`], the differential reference), it uses *lazy
//! invalidation*: each rank has at most one live entry, stamped with a
//! per-rank generation counter. Pushing a new entry for a rank silently
//! invalidates its previous one, and stale entries are discarded at pop
//! time. Pop order is therefore exactly the threaded scheduler's
//! `min (eff, rank)` selection rule.
//!
//! Invariants relied on by the executor (see DESIGN.md §8):
//!
//! * **One live entry per rank** — `push` bumps the rank's generation,
//!   so older entries for the same rank can never validate.
//! * **Entries only improve** — a rank's effective time is re-pushed
//!   only when a newly arrived message lowers it (blocked-recv wakeup),
//!   so a stale entry always carries an effective time ≥ the live one
//!   and lazy discarding never changes pop order.
//! * **Pop consumes** — a popped rank has no live entry until the
//!   executor settles its next queue head and pushes again.
//!
//! The queue does *not* assume monotone pops: a push below the current
//! window (or below the last popped time) is binary-inserted into the
//! active array and pops in exact `(eff, rank)` order, so the structure
//! agrees with the heap on arbitrary input sequences (see the
//! proptest).

use mpp_model::Time;

/// Default active-window width (ns of virtual time) when the caller has
/// no machine parameters at hand; `for_run` picks a width near the
/// machine's α instead.
#[cfg(test)]
const DEFAULT_WIDTH: Time = 64 * 1024;

/// Calendar queue of ready ranks keyed by `(effective time, rank)`,
/// with generation-stamped lazy invalidation.
pub(crate) struct ReadyQueue {
    /// Entries with `eff < win_end`, sorted descending by
    /// `(eff, rank, gen)` — pop is `near.pop()`.
    near: Vec<(Time, usize, u64)>,
    /// Entries with `eff >= win_end`, unsorted.
    far: Vec<(Time, usize, u64)>,
    /// Exclusive upper bound of the active window.
    win_end: Time,
    /// Window width (power of two, virtual ns).
    width: Time,
    gen: Vec<u64>,
    /// Stored entries (live + stale) across both arrays.
    entries: usize,
    /// Stale-compaction trigger and the sizing bound asserted on in
    /// debug builds: ranks + retry budget + slack (see `for_run`).
    cap_bound: usize,
}

impl ReadyQueue {
    /// Queue for `p` ranks with default sizing (tests, ad-hoc use).
    #[cfg(test)]
    pub fn new(p: usize) -> Self {
        ReadyQueue::for_run(p, 0, DEFAULT_WIDTH)
    }

    /// Queue sized for a run: `p` ranks, a per-message retry budget
    /// from the fault plan (each in-flight retry can re-wake a blocked
    /// rank and strand one stale entry), and a window width hint —
    /// ideally the machine's α, the natural spacing between a rank's
    /// consecutive events.
    pub fn for_run(p: usize, retry_budget: usize, width_hint: Time) -> Self {
        let width = width_hint.max(1024).next_power_of_two();
        let cap_bound = (p * 2 + p * retry_budget / 4 + 64).next_power_of_two();
        ReadyQueue {
            near: Vec::with_capacity(cap_bound.min(p * 2 + 8)),
            far: Vec::with_capacity(p.min(64)),
            win_end: width,
            width,
            gen: vec![0; p],
            entries: 0,
            cap_bound,
        }
    }

    /// Make `rank` ready at effective time `eff`, replacing any previous
    /// entry it may have had.
    pub fn push(&mut self, rank: usize, eff: Time) {
        self.gen[rank] += 1;
        let entry = (eff, rank, self.gen[rank]);
        if eff < self.win_end {
            // Descending order: find insertion point from the back.
            let at = self.near.partition_point(|&e| e > entry);
            self.near.insert(at, entry);
        } else {
            self.far.push(entry);
        }
        self.entries += 1;
        if self.entries > self.cap_bound {
            self.compact();
            debug_assert!(
                self.entries <= self.cap_bound,
                "ready-queue grew past its sizing bound even after dropping \
                 stale entries: {} live entries for {} ranks (bound {})",
                self.entries,
                self.gen.len(),
                self.cap_bound
            );
        }
    }

    /// Pop the ready rank with the smallest `(eff, rank)`. The entry is
    /// consumed: the rank must be `push`ed again to become ready.
    pub fn pop(&mut self) -> Option<(Time, usize)> {
        loop {
            while let Some((eff, rank, gen)) = self.near.pop() {
                self.entries -= 1;
                if gen == self.gen[rank] {
                    self.gen[rank] += 1; // consume — no live entry remains
                    return Some((eff, rank));
                }
            }
            if self.far.is_empty() {
                return None;
            }
            self.advance_window();
        }
    }

    /// Jump the window to the earliest overflow entry and sweep
    /// everything inside the new window into the active array.
    fn advance_window(&mut self) {
        debug_assert!(self.near.is_empty() && !self.far.is_empty());
        let min = self
            .far
            .iter()
            .map(|&(t, _, _)| t)
            .min()
            .expect("far is non-empty");
        // Align the window so repeated advances hit stable boundaries.
        let start = min & !(self.width - 1);
        self.win_end = start + self.width;
        let mut i = 0;
        while i < self.far.len() {
            if self.far[i].0 < self.win_end {
                self.near.push(self.far.swap_remove(i));
            } else {
                i += 1;
            }
        }
        // Descending, so `pop()` yields ascending `(eff, rank, gen)`.
        self.near.sort_unstable_by(|a, b| b.cmp(a));
    }

    /// Drop stale (superseded-generation) entries in place.
    fn compact(&mut self) {
        let gen = &self.gen;
        self.near.retain(|&(_, rank, g)| g == gen[rank]);
        self.far.retain(|&(_, rank, g)| g == gen[rank]);
        self.entries = self.near.len() + self.far.len();
    }
}

/// The seed scheduler: binary min-heap with the same generation-stamped
/// lazy invalidation. Kept as the differential reference for the
/// calendar queue's equivalence proptest.
#[cfg(test)]
pub(crate) struct HeapReadyQueue {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(Time, usize, u64)>>,
    gen: Vec<u64>,
}

#[cfg(test)]
impl HeapReadyQueue {
    pub fn new(p: usize) -> Self {
        HeapReadyQueue {
            heap: std::collections::BinaryHeap::with_capacity(p.saturating_mul(2)),
            gen: vec![0; p],
        }
    }

    pub fn push(&mut self, rank: usize, eff: Time) {
        self.gen[rank] += 1;
        self.heap
            .push(std::cmp::Reverse((eff, rank, self.gen[rank])));
    }

    pub fn pop(&mut self) -> Option<(Time, usize)> {
        while let Some(std::cmp::Reverse((eff, rank, gen))) = self.heap.pop() {
            if gen == self.gen[rank] {
                self.gen[rank] += 1;
                return Some((eff, rank));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_eff_then_rank_order() {
        let mut q = ReadyQueue::new(4);
        q.push(2, 50);
        q.push(0, 10);
        q.push(3, 10);
        q.push(1, 30);
        assert_eq!(q.pop(), Some((10, 0)));
        assert_eq!(q.pop(), Some((10, 3)));
        assert_eq!(q.pop(), Some((30, 1)));
        assert_eq!(q.pop(), Some((50, 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn repush_invalidates_previous_entry() {
        let mut q = ReadyQueue::new(2);
        q.push(0, 100);
        q.push(1, 50);
        // Rank 0's match improved: its entry moves earlier.
        q.push(0, 20);
        assert_eq!(q.pop(), Some((20, 0)));
        assert_eq!(q.pop(), Some((50, 1)));
        // The stale (100, 0) entry must have been discarded.
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_consumes_the_entry() {
        let mut q = ReadyQueue::new(1);
        q.push(0, 5);
        assert_eq!(q.pop(), Some((5, 0)));
        assert_eq!(q.pop(), None);
        q.push(0, 7);
        assert_eq!(q.pop(), Some((7, 0)));
    }

    #[test]
    fn window_advance_spans_sparse_times() {
        // Times far apart force repeated window jumps, including over
        // wholly empty calendar space.
        let mut q = ReadyQueue::for_run(4, 0, 1024);
        q.push(0, 0);
        q.push(1, 10_000_000);
        q.push(2, 3);
        q.push(3, 999_999_999_999);
        assert_eq!(q.pop(), Some((0, 0)));
        assert_eq!(q.pop(), Some((3, 2)));
        assert_eq!(q.pop(), Some((10_000_000, 1)));
        assert_eq!(q.pop(), Some((999_999_999_999, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn below_window_push_still_pops_first() {
        // A push earlier than everything already queued (even after
        // pops) must still win: the queue may not assume monotone time.
        let mut q = ReadyQueue::for_run(3, 0, 1024);
        q.push(0, 500_000);
        assert_eq!(q.pop(), Some((500_000, 0)));
        q.push(1, 600_000);
        q.push(2, 7); // far below the advanced window
        assert_eq!(q.pop(), Some((7, 2)));
        assert_eq!(q.pop(), Some((600_000, 1)));
    }

    #[test]
    fn stale_compaction_keeps_live_entries() {
        // Hammer one rank with improving re-pushes until well past the
        // sizing bound: compaction must fire (debug assertion inside
        // `push` would trip otherwise) and the final state must be
        // exactly the live entries.
        let mut q = ReadyQueue::for_run(2, 0, 1024);
        q.push(1, 1_000_000);
        for i in 0..10_000u64 {
            q.push(0, 2_000_000 - i);
        }
        assert_eq!(q.pop(), Some((1_000_000, 1)));
        assert_eq!(q.pop(), Some((2_000_000 - 9_999, 0)));
        assert_eq!(q.pop(), None);
    }

    /// Randomized equivalence against the threaded kernel's O(p) scan:
    /// interleave pushes (monotone per rank, as the executor guarantees)
    /// and pops, and require identical selections.
    #[test]
    fn matches_linear_scan_reference() {
        let p = 8;
        let mut q = ReadyQueue::new(p);
        let mut reference: Vec<Option<Time>> = vec![None; p];
        // SplitMix64 for a deterministic op sequence.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z ^= z >> 27;
            z
        };
        for _ in 0..2000 {
            let r = next();
            if r % 3 != 0 {
                let rank = (r as usize / 3) % p;
                // Entries only improve: new eff ≤ current, or fresh.
                let eff = match reference[rank] {
                    Some(cur) => cur.saturating_sub(next() % 50),
                    None => next() % 1000,
                };
                q.push(rank, eff);
                reference[rank] = Some(eff);
            } else {
                let best = reference
                    .iter()
                    .enumerate()
                    .filter_map(|(rank, eff)| eff.map(|e| (e, rank)))
                    .min();
                assert_eq!(q.pop(), best);
                if let Some((_, rank)) = best {
                    reference[rank] = None;
                }
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(256))]

        /// Differential check of the calendar queue against the seed's
        /// binary heap on *arbitrary* interleavings — same-tick ties,
        /// re-pushes in both directions (lazy invalidation), pushes
        /// below the advanced window, and pathological widths. Pop
        /// sequences must be identical element for element.
        #[test]
        fn calendar_matches_heap(
            width in proptest::prop_oneof![
                proptest::strategy::Just(1024u64),
                proptest::strategy::Just(1u64 << 20),
            ],
            ops in proptest::collection::vec(
                (0u8..2, 0usize..6, 0u64..5000), 1..200)
        ) {
            let p = 6;
            let mut cal = ReadyQueue::for_run(p, 2, width);
            let mut heap = HeapReadyQueue::new(p);
            for (is_pop, rank, time) in ops {
                if is_pop == 1 {
                    proptest::prop_assert_eq!(cal.pop(), heap.pop());
                } else {
                    // Cluster times to force same-tick collisions.
                    let t = time / 7 * 7;
                    cal.push(rank, t);
                    heap.push(rank, t);
                }
            }
            // Drain both to the end.
            loop {
                let (a, b) = (cal.pop(), heap.pop());
                proptest::prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}

//! Indexed ready-queue for the cooperative executor.
//!
//! The threaded kernel picks the next rank to run with an O(p) scan over
//! every rank state per processed event. The cooperative executor
//! replaces that scan with a binary min-heap keyed by
//! `(effective time, rank)` and *lazy invalidation*: each rank has at
//! most one live entry, stamped with a per-rank generation counter.
//! Pushing a new entry for a rank silently invalidates its previous one,
//! and stale entries are discarded at pop time. Pop order is therefore
//! exactly the threaded scheduler's `min (eff, rank)` selection rule, at
//! O(log p) per event instead of O(p).
//!
//! Invariants relied on by the executor (see DESIGN.md §8):
//!
//! * **One live entry per rank** — `push` bumps the rank's generation,
//!   so older heap entries for the same rank can never validate.
//! * **Entries only improve** — a rank's effective time is re-pushed
//!   only when a newly arrived message lowers it (blocked-recv wakeup),
//!   so a stale entry always carries an effective time ≥ the live one
//!   and lazy discarding never changes pop order.
//! * **Pop consumes** — a popped rank has no live entry until the
//!   executor settles its next queue head and pushes again.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mpp_model::Time;

/// Min-heap of ready ranks keyed by `(effective time, rank)`, with
/// generation-stamped lazy invalidation.
pub(crate) struct ReadyQueue {
    heap: BinaryHeap<Reverse<(Time, usize, u64)>>,
    gen: Vec<u64>,
}

impl ReadyQueue {
    pub fn new(p: usize) -> Self {
        ReadyQueue {
            heap: BinaryHeap::with_capacity(p.saturating_mul(2)),
            gen: vec![0; p],
        }
    }

    /// Make `rank` ready at effective time `eff`, replacing any previous
    /// entry it may have had.
    pub fn push(&mut self, rank: usize, eff: Time) {
        self.gen[rank] += 1;
        self.heap.push(Reverse((eff, rank, self.gen[rank])));
    }

    /// Pop the ready rank with the smallest `(eff, rank)`. The entry is
    /// consumed: the rank must be `push`ed again to become ready.
    pub fn pop(&mut self) -> Option<(Time, usize)> {
        while let Some(Reverse((eff, rank, gen))) = self.heap.pop() {
            if gen == self.gen[rank] {
                self.gen[rank] += 1; // consume — no live entry remains
                return Some((eff, rank));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_eff_then_rank_order() {
        let mut q = ReadyQueue::new(4);
        q.push(2, 50);
        q.push(0, 10);
        q.push(3, 10);
        q.push(1, 30);
        assert_eq!(q.pop(), Some((10, 0)));
        assert_eq!(q.pop(), Some((10, 3)));
        assert_eq!(q.pop(), Some((30, 1)));
        assert_eq!(q.pop(), Some((50, 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn repush_invalidates_previous_entry() {
        let mut q = ReadyQueue::new(2);
        q.push(0, 100);
        q.push(1, 50);
        // Rank 0's match improved: its entry moves earlier.
        q.push(0, 20);
        assert_eq!(q.pop(), Some((20, 0)));
        assert_eq!(q.pop(), Some((50, 1)));
        // The stale (100, 0) entry must have been discarded.
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_consumes_the_entry() {
        let mut q = ReadyQueue::new(1);
        q.push(0, 5);
        assert_eq!(q.pop(), Some((5, 0)));
        assert_eq!(q.pop(), None);
        q.push(0, 7);
        assert_eq!(q.pop(), Some((7, 0)));
    }

    /// Randomized equivalence against the threaded kernel's O(p) scan:
    /// interleave pushes (monotone per rank, as the executor guarantees)
    /// and pops, and require identical selections.
    #[test]
    fn matches_linear_scan_reference() {
        let p = 8;
        let mut q = ReadyQueue::new(p);
        let mut reference: Vec<Option<Time>> = vec![None; p];
        // SplitMix64 for a deterministic op sequence.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z ^= z >> 27;
            z
        };
        for _ in 0..2000 {
            let r = next();
            if r % 3 != 0 {
                let rank = (r as usize / 3) % p;
                // Entries only improve: new eff ≤ current, or fresh.
                let eff = match reference[rank] {
                    Some(cur) => cur.saturating_sub(next() % 50),
                    None => next() % 1000,
                };
                q.push(rank, eff);
                reference[rank] = Some(eff);
            } else {
                let best = reference
                    .iter()
                    .enumerate()
                    .filter_map(|(rank, eff)| eff.map(|e| (e, rank)))
                    .min();
                assert_eq!(q.pop(), best);
                if let Some((_, rank)) = best {
                    reference[rank] = None;
                }
            }
        }
    }
}

//! Slab storage for rank state machines.
//!
//! The cooperative executor runs every rank program as one `async`
//! state machine for the whole experiment. The seed pinned each future
//! in its own `Box` (`Vec<Option<Pin<Box<Fut>>>>`) — `p` separate heap
//! allocations per run, scattered across the heap, touched on every
//! resume. [`RankSlab`] replaces that with a *single* pre-sized
//! allocation holding all `p` state machines contiguously:
//!
//! * slots never move after construction — futures are polled in place
//!   through a pinned projection, and vacated in place (`Option` →
//!   `None` drops the machine where it sits), satisfying the pin drop
//!   guarantee;
//! * each slot carries a generation counter bumped when the slot is
//!   vacated, so a `(rank, generation)` pair is a *handle* that can
//!   outlive the future it referred to and be validated on use. The
//!   executor's ready queue stores exactly such generation-stamped
//!   handles (see `sched.rs`): a stale handle can never resume a
//!   completed machine.
//!
//! No `unsafe` leaks out of this module: the only obligations are that
//! the boxed slice is never reallocated (it isn't — the slab is sized
//! once, up front) and that poll projections don't move the future
//! (they don't — `Pin::new_unchecked` wraps a reference into the
//! pinned allocation).

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll, Waker};

struct Slot<Fut> {
    fut: Option<Fut>,
    generation: u32,
}

/// A pre-sized pinned slab of rank futures, one slot per rank.
pub(crate) struct RankSlab<Fut> {
    slots: Pin<Box<[Slot<Fut>]>>,
    live: usize,
}

/// Generation-indexed reference to a slab slot. Stale after the slot it
/// points to is vacated.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct SlabHandle {
    pub rank: usize,
    pub generation: u32,
}

impl<Fut: Future> RankSlab<Fut> {
    /// Build the slab from one future per rank. All state machines land
    /// in a single contiguous allocation, pinned for the experiment.
    pub fn new(futs: impl IntoIterator<Item = Fut>) -> Self {
        let slots: Box<[Slot<Fut>]> = futs
            .into_iter()
            .map(|f| Slot {
                fut: Some(f),
                generation: 0,
            })
            .collect();
        let live = slots.len();
        // SAFETY: the boxed slice is heap-allocated and never moved or
        // reallocated; slot contents are only ever dropped in place.
        let slots = unsafe { Pin::new_unchecked(slots) };
        RankSlab { slots, live }
    }

    /// Number of ranks in the slab (occupied or vacated).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Ranks whose futures have not yet completed.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Current handle for `rank` (valid until the slot is vacated).
    pub fn handle(&self, rank: usize) -> SlabHandle {
        SlabHandle {
            rank,
            generation: self.slots[rank].generation,
        }
    }

    /// True if `h` still refers to the machine it was created for.
    pub fn is_current(&self, h: SlabHandle) -> bool {
        self.slots[h.rank].generation == h.generation
    }

    /// Poll `rank`'s machine in place with a no-op waker.
    ///
    /// Returns `None` if the slot is already vacated (the program
    /// completed earlier), `Some(Poll::Pending)` if it suspended again,
    /// or `Some(Poll::Ready(out))` exactly once — at which point the
    /// machine is dropped in place and the slot's generation bumps,
    /// invalidating outstanding handles.
    pub fn poll(&mut self, rank: usize) -> Option<Poll<Fut::Output>> {
        // SAFETY: we hand out only a `Pin<&mut Fut>` projection of the
        // pinned slot and never move the future; vacating stores `None`
        // over it, dropping it in place.
        let slot = unsafe { &mut self.slots.as_mut().get_unchecked_mut()[rank] };
        let fut = slot.fut.as_mut()?;
        let pinned = unsafe { Pin::new_unchecked(fut) };
        let mut cx = Context::from_waker(Waker::noop());
        match pinned.poll(&mut cx) {
            Poll::Ready(out) => {
                slot.fut = None;
                slot.generation += 1;
                self.live -= 1;
                Some(Poll::Ready(out))
            }
            Poll::Pending => Some(Poll::Pending),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    /// Yields `n` times, then resolves to `n`.
    struct YieldN {
        left: u32,
        n: u32,
    }

    impl Future for YieldN {
        type Output = u32;
        fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<u32> {
            if self.left == 0 {
                Poll::Ready(self.n)
            } else {
                self.left -= 1;
                Poll::Pending
            }
        }
    }

    #[test]
    fn polls_in_place_until_ready() {
        let mut slab = RankSlab::new((0..4u32).map(|n| YieldN { left: n, n }));
        assert_eq!(slab.len(), 4);
        assert_eq!(slab.live(), 4);
        let mut done = vec![None; 4];
        for _round in 0..5 {
            for (rank, slot) in done.iter_mut().enumerate() {
                if let Some(Poll::Ready(v)) = slab.poll(rank) {
                    *slot = Some(v);
                }
            }
        }
        assert_eq!(done, vec![Some(0), Some(1), Some(2), Some(3)]);
        assert_eq!(slab.live(), 0);
        // Vacated slots refuse further polls.
        assert!(slab.poll(2).is_none());
    }

    #[test]
    fn handles_go_stale_on_completion() {
        let mut slab = RankSlab::new([YieldN { left: 0, n: 7 }]);
        let h = slab.handle(0);
        assert!(slab.is_current(h));
        assert!(matches!(slab.poll(0), Some(Poll::Ready(7))));
        assert!(!slab.is_current(h), "completion must invalidate handles");
        assert_ne!(slab.handle(0), h);
    }

    #[test]
    fn drops_unfinished_machines_in_place() {
        struct NoteDrop(Rc<Cell<u32>>);
        impl Future for NoteDrop {
            type Output = ();
            fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
                Poll::Pending
            }
        }
        impl Drop for NoteDrop {
            fn drop(&mut self) {
                self.0.set(self.0.get() + 1);
            }
        }
        let drops = Rc::new(Cell::new(0));
        let mut slab = RankSlab::new((0..3).map(|_| NoteDrop(Rc::clone(&drops))));
        assert!(matches!(slab.poll(0), Some(Poll::Pending)));
        drop(slab);
        assert_eq!(drops.get(), 3, "pinned machines must drop with the slab");
    }
}

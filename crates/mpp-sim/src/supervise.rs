//! Supervision primitives: cooperative cancellation and kernel
//! watchdog budgets.
//!
//! The kernel itself never aborts the process — every abnormal outcome
//! surfaces as a [`SimError`](crate::SimError) through
//! [`try_simulate_with`](crate::try_simulate_with). The two knobs here
//! bound *how long* a simulation may run before the kernel gives up:
//!
//! * [`CancelToken`] — a shared flag an external supervisor (the sweep
//!   engine, a service handler, a signal handler) flips to make every
//!   simulation holding the token exit with `SimError::Cancelled` at
//!   its next scheduling step.
//! * [`SimBudget`] — event-count, virtual-time, and wall-clock ceilings
//!   that convert livelocks (e.g. infinite retry loops under hostile
//!   fault plans) into `SimError::WatchdogTripped` /
//!   `SimError::DeadlineExceeded` with a per-rank diagnostic dump
//!   instead of an unbounded spin.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Duration;

use mpp_model::Time;

/// A shared, clonable cancellation flag.
///
/// Cloning is cheap (one `Arc` bump); every clone observes the same
/// flag. Cancellation is *cooperative*: the kernel polls the token
/// between scheduling steps, so a cancelled simulation stops at a clean
/// event boundary with all its state intact, never mid-operation.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Flip the flag. Idempotent; wakes nothing by itself — holders
    /// notice at their next poll.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has [`cancel`](Self::cancel) been called (on any clone)?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Watchdog ceilings for one simulation run. The default budget is
/// unlimited on every axis except the process-wide
/// `STP_WATCHDOG_EVENTS` override (see [`SimBudget::from_env`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimBudget {
    /// Maximum kernel events (sends, receive matches, timeouts,
    /// iteration marks, finishes) before the watchdog trips.
    pub max_events: Option<u64>,
    /// Maximum virtual time (ns) any scheduled event may reach.
    pub max_virtual_ns: Option<Time>,
    /// Maximum wall-clock runtime before the run exits with
    /// [`SimError::DeadlineExceeded`](crate::SimError::DeadlineExceeded).
    pub max_wall: Option<Duration>,
}

impl SimBudget {
    /// An unlimited budget (ignores the environment).
    pub fn unlimited() -> Self {
        SimBudget::default()
    }

    /// The process-default budget: unlimited unless `STP_WATCHDOG_EVENTS`
    /// sets an event ceiling. A malformed value warns once per process
    /// and is ignored — never silently misconfigured, never spammed.
    pub fn from_env() -> Self {
        SimBudget {
            max_events: env_u64("STP_WATCHDOG_EVENTS"),
            ..SimBudget::default()
        }
    }

    /// Cap the number of kernel events.
    pub fn with_max_events(mut self, n: u64) -> Self {
        self.max_events = Some(n);
        self
    }

    /// Cap the virtual time any event may reach (ns).
    pub fn with_max_virtual_ns(mut self, ns: Time) -> Self {
        self.max_virtual_ns = Some(ns);
        self
    }

    /// Cap the wall-clock runtime.
    pub fn with_max_wall(mut self, wall: Duration) -> Self {
        self.max_wall = Some(wall);
        self
    }

    /// True when no ceiling is set (the watchdog costs nothing).
    pub fn is_unlimited(&self) -> bool {
        self.max_events.is_none() && self.max_virtual_ns.is_none() && self.max_wall.is_none()
    }
}

/// How a supervised run was interrupted. The executors translate trips
/// into full [`SimError`](crate::SimError)s with per-rank state dumps.
pub(crate) enum WatchdogTrip {
    /// The event-count or virtual-time budget was exceeded;
    /// carries `(events_processed, virtual_ns)` at trip time.
    Budget(u64, Time),
    /// The wall-clock ceiling (ms) was exceeded.
    Wall(u64),
    /// The run's [`CancelToken`] was cancelled.
    Cancelled,
}

/// Per-run watchdog state shared by both executors. Constructed only
/// when the run is supervised (some ceiling or a cancel token is set),
/// so unsupervised runs pay a single `Option` check per scheduling step.
pub(crate) struct Watchdog {
    budget: SimBudget,
    cancel: Option<CancelToken>,
    /// Lazily started on the first check so unlimited-wall runs never
    /// touch the host clock (keeps the Miri job happy).
    started: Option<std::time::Instant>,
}

impl Watchdog {
    /// A watchdog for this run, or `None` when nothing is bounded.
    pub fn for_run(budget: &SimBudget, cancel: &Option<CancelToken>) -> Option<Self> {
        if budget.is_unlimited() && cancel.is_none() {
            return None;
        }
        Some(Watchdog {
            budget: budget.clone(),
            cancel: cancel.clone(),
            started: None,
        })
    }

    /// Check every ceiling against the run's progress. `events` is the
    /// kernel's processed-event count, `virtual_ns` the virtual time of
    /// the event about to be dispatched. Called once per scheduling
    /// step; the wall-clock probe is amortized (every 4096 events).
    pub fn check(&mut self, events: u64, virtual_ns: Time) -> Result<(), WatchdogTrip> {
        if let Some(cancel) = &self.cancel {
            if cancel.is_cancelled() {
                return Err(WatchdogTrip::Cancelled);
            }
        }
        if let Some(max) = self.budget.max_events {
            if events > max {
                return Err(WatchdogTrip::Budget(events, virtual_ns));
            }
        }
        if let Some(max) = self.budget.max_virtual_ns {
            if virtual_ns > max {
                return Err(WatchdogTrip::Budget(events, virtual_ns));
            }
        }
        if let Some(max_wall) = self.budget.max_wall {
            let started = self.started.get_or_insert_with(std::time::Instant::now);
            if events.is_multiple_of(4096) && started.elapsed() > max_wall {
                return Err(WatchdogTrip::Wall(max_wall.as_millis() as u64));
            }
        }
        Ok(())
    }
}

/// Parse one watchdog environment override; `None` when unset or
/// malformed (malformed warns, once per variable per process).
fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(_) => {
            warn_once(name, &raw);
            None
        }
    }
}

/// Warn about a malformed environment variable exactly once per process
/// per variable — budget parsing runs once per `SimConfig::default()`,
/// i.e. once per grid point in a sweep.
pub(crate) fn warn_once(name: &str, raw: &str) {
    static WARNED: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    let mut warned = WARNED
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if !warned.iter().any(|n| n == name) {
        warned.push(name.to_string());
        eprintln!("warning: ignoring {name}={raw:?}: expected a non-negative integer");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        a.cancel(); // idempotent
        assert!(a.is_cancelled());
    }

    #[test]
    fn budget_builders_compose() {
        let b = SimBudget::unlimited()
            .with_max_events(10)
            .with_max_virtual_ns(1_000)
            .with_max_wall(Duration::from_millis(5));
        assert_eq!(b.max_events, Some(10));
        assert_eq!(b.max_virtual_ns, Some(1_000));
        assert_eq!(b.max_wall, Some(Duration::from_millis(5)));
        assert!(!b.is_unlimited());
        assert!(SimBudget::unlimited().is_unlimited());
    }
}

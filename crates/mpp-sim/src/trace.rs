//! Message tracing: optional per-message records of a simulation run,
//! plus a plain-text timeline renderer.
//!
//! Enable with [`SimConfig::trace`](crate::SimConfig); the records come
//! back in [`SimOutcome::trace`](crate::SimOutcome). Useful for seeing
//! *why* an algorithm is slow on a distribution: hot-spot serialization
//! shows up as a ladder of stalled transfers into one rank, combining
//! stalls as gaps between a rank's receive and its next send.

use mpp_model::Time;

use crate::Tag;

/// One point-to-point message observed by the kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsgTrace {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Message tag.
    pub tag: Tag,
    /// Payload bytes.
    pub bytes: usize,
    /// Virtual time the send was issued (after α_send).
    pub send_ns: Time,
    /// Virtual time the message arrived at the destination node.
    pub arrival_ns: Time,
    /// Time the transfer waited for busy links/ports before starting.
    pub stalled_ns: Time,
}

impl MsgTrace {
    /// Transfer duration including stall (ns).
    pub fn latency_ns(&self) -> Time {
        self.arrival_ns.saturating_sub(self.send_ns)
    }
}

/// Aggregate statistics over a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSummary {
    /// Number of messages.
    pub messages: usize,
    /// Total payload bytes.
    pub bytes: u64,
    /// Total stalled time across transfers (ns).
    pub stalled_ns: Time,
    /// Maximum single-message latency (ns).
    pub max_latency_ns: Time,
    /// Virtual time of the last arrival (ns).
    pub span_ns: Time,
}

/// Summarize a trace.
pub fn summarize(trace: &[MsgTrace]) -> TraceSummary {
    TraceSummary {
        messages: trace.len(),
        bytes: trace.iter().map(|t| t.bytes as u64).sum(),
        stalled_ns: trace.iter().map(|t| t.stalled_ns).sum(),
        max_latency_ns: trace.iter().map(|t| t.latency_ns()).max().unwrap_or(0),
        span_ns: trace.iter().map(|t| t.arrival_ns).max().unwrap_or(0),
    }
}

/// Render a per-rank timeline of message activity as text: one row per
/// rank, `width` columns spanning virtual time; `>` marks a send, `<` an
/// arrival, `#` both in the same cell.
pub fn render_timeline(trace: &[MsgTrace], ranks: usize, width: usize) -> String {
    let span = trace.iter().map(|t| t.arrival_ns).max().unwrap_or(0).max(1);
    let col = |t: Time| ((t as u128 * (width as u128 - 1)) / span as u128) as usize;
    let mut grid = vec![vec![b' '; width]; ranks];
    for t in trace {
        if t.src < ranks {
            let c = col(t.send_ns);
            grid[t.src][c] = if grid[t.src][c] == b'<' { b'#' } else { b'>' };
        }
        if t.dst < ranks {
            let c = col(t.arrival_ns);
            grid[t.dst][c] = if grid[t.dst][c] == b'>' { b'#' } else { b'<' };
        }
    }
    let mut out = String::new();
    for (rank, row) in grid.into_iter().enumerate() {
        out.push_str(&format!("{rank:>4} |"));
        out.push_str(std::str::from_utf8(&row).unwrap());
        out.push('\n');
    }
    out.push_str(&format!("     0 .. {:.3} ms\n", span as f64 / 1e6));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(src: usize, dst: usize, send: Time, arrival: Time, stalled: Time) -> MsgTrace {
        MsgTrace {
            src,
            dst,
            tag: 0,
            bytes: 100,
            send_ns: send,
            arrival_ns: arrival,
            stalled_ns: stalled,
        }
    }

    #[test]
    fn summary_aggregates() {
        let trace = vec![t(0, 1, 0, 100, 10), t(1, 0, 50, 400, 0)];
        let s = summarize(&trace);
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 200);
        assert_eq!(s.stalled_ns, 10);
        assert_eq!(s.max_latency_ns, 350);
        assert_eq!(s.span_ns, 400);
    }

    #[test]
    fn empty_trace_summary() {
        let s = summarize(&[]);
        assert_eq!(s.messages, 0);
        assert_eq!(s.span_ns, 0);
    }

    #[test]
    fn timeline_has_one_row_per_rank() {
        let trace = vec![t(0, 1, 0, 1000, 0)];
        let text = render_timeline(&trace, 3, 40);
        assert_eq!(text.lines().count(), 4); // 3 ranks + time axis
        assert!(text.contains('>'));
        assert!(text.contains('<'));
    }

    #[test]
    fn timeline_marks_overlap() {
        // send and arrival in the same cell on the same rank -> '#'
        let trace = vec![t(0, 0, 500, 500, 0)];
        let text = render_timeline(&trace, 1, 10);
        assert!(text.contains('#'), "{text}");
    }
}

//! Algorithm picker: sweep the (machine, s, L) space, run every
//! algorithm, and check the paper-derived recommendation
//! ([`recommend`]) against the measured winner.
//!
//! Run with: `cargo run --release --example algorithm_picker`

use stp_broadcast::prelude::*;

fn main() {
    let paragon = Machine::paragon(10, 10);
    let t3d = Machine::t3d(128, 42);

    let candidates = [
        AlgoKind::TwoStep,
        AlgoKind::PersAlltoAll,
        AlgoKind::MpiAllGather,
        AlgoKind::MpiAlltoall,
        AlgoKind::BrLin,
        AlgoKind::BrXySource,
        AlgoKind::ReposXySource,
    ];

    let cases: Vec<(&Machine, usize, usize)> = vec![
        (&paragon, 10, 4096),
        (&paragon, 30, 6144),
        (&paragon, 80, 2048),
        (&paragon, 30, 128),
        (&t3d, 20, 4096),
        (&t3d, 64, 4096),
        (&t3d, 120, 1024),
    ];

    let mut agree = 0;
    println!(
        "{:<16} {:>4} {:>6}  {:<16} {:<16} {:>10}",
        "machine", "s", "L", "recommended", "measured best", "best ms"
    );
    for (machine, s, msg_len) in &cases {
        let rec = recommend(machine, *s, *msg_len);
        let mut best: Option<(AlgoKind, f64)> = None;
        for &kind in &candidates {
            let exp = Experiment {
                machine,
                dist: SourceDist::Equal,
                s: *s,
                msg_len: *msg_len,
                kind,
            };
            let out = exp.run().expect("run failed");
            assert!(out.verified);
            let ms = out.makespan_ms();
            if best.is_none_or(|(_, b)| ms < b) {
                best = Some((kind, ms));
            }
        }
        let (winner, ms) = best.unwrap();
        // "agreement": recommendation within 10% of the measured winner.
        let rec_ms = Experiment {
            machine,
            dist: SourceDist::Equal,
            s: *s,
            msg_len: *msg_len,
            kind: rec,
        }
        .run()
        .expect("run failed")
        .makespan_ms();
        let close = rec_ms <= ms * 1.10;
        if close {
            agree += 1;
        }
        println!(
            "{:<16} {:>4} {:>6}  {:<16} {:<16} {:>10.3}{}",
            machine.name,
            s,
            msg_len,
            rec.name(),
            winner.name(),
            ms,
            if close {
                ""
            } else {
                "   <-- recommendation off"
            }
        );
    }
    println!(
        "\nrecommendation within 10% of the winner in {agree}/{} cases",
        cases.len()
    );
}

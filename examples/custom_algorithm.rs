//! Writing your own s-to-p algorithm against the `Communicator` trait —
//! a tutorial example.
//!
//! Implements a *ring pipeline* s-to-p broadcast: the sources' messages
//! travel around a ring, each rank absorbing and forwarding. `O(p)`
//! rounds of small messages — simple, wait-light, and terrible on large
//! machines — then races it against the paper's algorithms to show how
//! to evaluate a new idea in this framework.
//!
//! Run with: `cargo run --release --example custom_algorithm`

use stp_broadcast::prelude::*;

/// The custom algorithm: pipeline every source payload around a ring.
struct RingPipeline;

impl StpAlgorithm for RingPipeline {
    fn name(&self) -> &'static str {
        "RingPipeline (custom)"
    }

    fn run<'a>(
        &'a self,
        comm: &'a mut dyn stp_broadcast::runtime::Communicator,
        ctx: &'a StpCtx<'a>,
    ) -> stp_broadcast::runtime::CommFuture<'a, MessageSet> {
        Box::pin(async move {
            ctx.validate(comm);
            let p = comm.size();
            let me = comm.rank();
            let next = (me + 1) % p;
            let prev = (me + p - 1) % p;

            let mut set = match ctx.payload {
                Some(pl) => MessageSet::single(me, pl),
                None => MessageSet::new(),
            };
            if p == 1 {
                return set;
            }

            // p-1 rounds: forward what arrived last round (or my own payload
            // in round 0 if I am a source); receive whatever my predecessor
            // forwarded. A round's message can be empty (a 0-entry set) —
            // rounds stay in lockstep, which keeps the pipeline trivially
            // correct at the cost of empty-message overhead. Improving that
            // is the whole game — see the merge algorithms.
            let mut forward: MessageSet = set.clone();
            for round in 0..p - 1 {
                comm.send_payload(next, round as u32, forward.to_payload());
                let got = comm.recv(Some(prev), Some(round as u32)).await;
                comm.charge_memcpy(got.data.len());
                forward = MessageSet::from_payload(&got.data).expect("malformed ring message");
                set.merge(forward.clone());
                comm.next_iteration();
            }
            set
        })
    }
}

fn main() {
    let machine = Machine::paragon(8, 8);
    let shape = machine.shape;
    let sources = SourceDist::Equal.place(shape, 12);
    let len = 2048;

    // 1. Correctness first, on real threads.
    let out = run_threads(machine.p(), async |comm| {
        let payload = sources
            .binary_search(&comm.rank())
            .is_ok()
            .then(|| payload_for(comm.rank(), len));
        let ctx = StpCtx {
            shape,
            sources: &sources,
            payload: payload.as_deref(),
        };
        let set = RingPipeline.run(comm, &ctx).await;
        set.sources().collect::<Vec<_>>() == sources
    });
    assert!(out.results.iter().all(|&ok| ok));
    println!(
        "RingPipeline verified on the threads backend ({} ranks)",
        machine.p()
    );

    // 2. Then performance, on the simulator, against the paper's field.
    let ring_ms = {
        let run = run_simulated(&machine, LibraryKind::Nx, async |comm| {
            let payload = sources
                .binary_search(&comm.rank())
                .is_ok()
                .then(|| payload_for(comm.rank(), len));
            let ctx = StpCtx {
                shape,
                sources: &sources,
                payload: payload.as_deref(),
            };
            RingPipeline.run(comm, &ctx).await.len()
        });
        run.makespan_ns as f64 / 1e6
    };
    println!("\n{:<22} {:>9}", "algorithm", "ms");
    println!("{:<22} {:>9.3}", "RingPipeline (custom)", ring_ms);
    for kind in [AlgoKind::BrLin, AlgoKind::BrXySource, AlgoKind::TwoStep] {
        let exp = Experiment {
            machine: &machine,
            dist: SourceDist::Equal,
            s: sources.len(),
            msg_len: len,
            kind,
        };
        let out = exp.run().expect("run failed");
        assert!(out.verified);
        println!("{:<22} {:>9.3}", kind.name(), out.makespan_ms());
    }
    println!("\np-1 rounds of startup cost bury the ring — exactly why the paper merges.");
}

//! Dynamic broadcasting (paper §1): in iterative applications,
//! processors initiate broadcasts when their local computation produces
//! a significant change — the source set varies from round to round and
//! is often random.
//!
//! This example simulates an iterative solver on a 10×10 Paragon: each
//! of 12 iterations, a random subset of processors has "converged
//! updates" to publish. It compares a fixed algorithm against the
//! paper-derived recommendation ([`recommend`]) per round.
//!
//! Run with: `cargo run --release --example dynamic_broadcast`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stp_broadcast::prelude::*;
use stp_broadcast::stp::runner::run_sources;

fn main() {
    let machine = Machine::paragon(10, 10);
    let p = machine.p();
    let mut rng = StdRng::seed_from_u64(2026);
    let msg_len = 4096;

    let mut fixed_total_ms = 0.0;
    let mut picked_total_ms = 0.0;

    println!("round  s   fixed(Br_Lin)   picked(algorithm)        ms");
    for round in 0..12 {
        // A random number of sources at random positions this round.
        let s = rng.gen_range(1..=p / 2);
        let mut sources: Vec<usize> = (0..p).collect();
        for i in (1..p).rev() {
            let j = rng.gen_range(0..=i);
            sources.swap(i, j);
        }
        sources.truncate(s);
        sources.sort_unstable();

        let payload = |src: usize| payload_for(src ^ round, msg_len);

        let fixed = run_sources(
            &machine,
            LibraryKind::Nx,
            &sources,
            &payload,
            AlgoKind::BrLin,
        )
        .expect("run failed");
        assert!(fixed.verified);

        let pick = recommend(&machine, s, msg_len);
        let picked =
            run_sources(&machine, LibraryKind::Nx, &sources, &payload, pick).expect("run failed");
        assert!(picked.verified);

        fixed_total_ms += fixed.makespan_ms();
        picked_total_ms += picked.makespan_ms();
        println!(
            "{round:>5} {s:>3} {:>12.3}    {:<18} {:>8.3}",
            fixed.makespan_ms(),
            pick.name(),
            picked.makespan_ms()
        );
    }

    println!("\ntotals over 12 rounds: fixed Br_Lin {fixed_total_ms:.2} ms, per-round recommendation {picked_total_ms:.2} ms");
}

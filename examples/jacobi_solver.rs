//! An iterative Jacobi-style solver on the simulated machine — the kind
//! of application the paper's introduction motivates: per-iteration
//! neighbour exchanges, a global convergence test (allreduce), and an
//! occasional s-to-p broadcast when some processors' values change
//! enough that everyone must be updated (dynamic broadcasting).
//!
//! Demonstrates the whole stack working together: collectives +
//! s-to-p algorithms + the timed simulator, with virtual time accounting
//! for the complete application.
//!
//! Run with: `cargo run --release --example jacobi_solver`

use stp_broadcast::coll;
use stp_broadcast::prelude::*;

/// Local grid block per processor (NxN interior cells).
const BLOCK: usize = 32;
/// Convergence threshold on the global residual.
const EPS: f64 = 1e-3;

fn main() {
    let machine = Machine::paragon(8, 8);
    let shape = machine.shape;

    let out = run_simulated(&machine, LibraryKind::Nx, async |comm| {
        let me = comm.rank();
        let (row, col) = shape.coords(me);

        // Initial local state: a synthetic heat distribution.
        let mut local: Vec<f64> = (0..BLOCK * BLOCK)
            .map(|i| ((me * 31 + i) % 97) as f64 / 97.0)
            .collect();
        let order: Vec<usize> = (0..comm.size()).collect();

        let mut iterations = 0u32;
        let mut broadcasts = 0u32;
        loop {
            iterations += 1;

            // 1. Halo exchange with mesh neighbours (boundary rows/cols).
            let halo: Vec<u8> = local[..BLOCK]
                .iter()
                .flat_map(|v| v.to_le_bytes())
                .collect();
            let mut neighbours = Vec::new();
            if row > 0 {
                neighbours.push(shape.rank(row - 1, col));
            }
            if row + 1 < shape.rows {
                neighbours.push(shape.rank(row + 1, col));
            }
            if col > 0 {
                neighbours.push(shape.rank(row, col - 1));
            }
            if col + 1 < shape.cols {
                neighbours.push(shape.rank(row, col + 1));
            }
            for &n in &neighbours {
                comm.send(n, 10, &halo);
            }
            let mut halo_sum = 0.0f64;
            for &n in &neighbours {
                let m = comm.recv(Some(n), Some(10)).await;
                for chunk in m.data.contiguous().chunks_exact(8) {
                    halo_sum += f64::from_le_bytes(chunk.try_into().unwrap());
                }
            }

            // 2. Local relaxation step (damped towards the halo mean).
            let halo_mean = halo_sum / (neighbours.len() * BLOCK) as f64;
            let mut residual = 0.0f64;
            for v in local.iter_mut() {
                let next = 0.7 * *v + 0.3 * halo_mean;
                residual += (next - *v).abs();
                *v = next;
            }

            // 3. Global convergence test: allreduce of the residual.
            let combine = |a: &[u8], b: &[u8]| {
                let x = f64::from_le_bytes(a.try_into().unwrap());
                let y = f64::from_le_bytes(b.try_into().unwrap());
                (x + y).to_le_bytes().to_vec()
            };
            let total = coll::allreduce(comm, &order, &residual.to_le_bytes(), &combine, 100).await;
            let total = f64::from_le_bytes(total[..].try_into().unwrap());
            comm.next_iteration();

            // 4. Dynamic broadcasting: processors whose residual is an
            // outlier publish their boundary state to everyone (the
            // paper's s-to-p scenario). Every rank computes the same
            // source set from the deterministic iteration number.
            if iterations.is_multiple_of(3) {
                let s = ((iterations as usize * 7) % 24) + 1;
                let dist = SourceDist::Equal.place(shape, s);
                let payload = dist.binary_search(&me).is_ok().then(|| halo.clone());
                let ctx = StpCtx {
                    shape,
                    sources: &dist,
                    payload: payload.as_deref(),
                };
                let set = BrXySource.run(comm, &ctx).await;
                assert_eq!(set.len(), s);
                broadcasts += 1;
            }

            if total < EPS || iterations >= 30 {
                return (iterations, broadcasts, total);
            }
        }
    });

    let (iters, bcasts, residual) = out.results[0];
    assert!(out
        .results
        .iter()
        .all(|&(i, b, _)| i == iters && b == bcasts));
    println!(
        "Jacobi on {}: {} iterations, {} s-to-p broadcasts, final residual {:.5}",
        machine.name, iters, bcasts, residual
    );
    println!(
        "virtual time {:.3} ms  (contention stalls: {})",
        out.makespan_ms(),
        out.contention_events
    );
}

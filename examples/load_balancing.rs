//! Dynamic load balancing for distributed spatial data (paper §1, citing
//! Hambrusch & Khokhar's distributed data-structure work): the number of
//! overloaded processors is not known in advance, but their positions
//! tend to follow regular patterns — here, the boundary rows/columns of
//! a spatial decomposition get hot.
//!
//! Each rebalancing step, the overloaded processors broadcast their load
//! summaries (an s-to-p broadcast with a *structured* source set), and
//! every processor locally recomputes the new partition. The example
//! shows how the structured patterns favour the repositioning algorithm
//! exactly as §5.2 predicts.
//!
//! Run with: `cargo run --release --example load_balancing`

use stp_broadcast::prelude::*;

/// Load summary a hot processor publishes: (rank, items, boundary keys).
fn load_record(rank: usize, items: u32) -> Vec<u8> {
    let mut v = Vec::with_capacity(6 * 1024);
    v.extend_from_slice(&(rank as u32).to_le_bytes());
    v.extend_from_slice(&items.to_le_bytes());
    // boundary keys payload (fixed-size summary)
    v.resize(6 * 1024, (rank & 0xFF) as u8);
    v
}

fn main() {
    let machine = Machine::paragon(16, 16);

    // Rebalancing scenarios: hot boundaries form rows, columns, or a hot
    // rectangular region (square block) of the spatial decomposition.
    let scenarios = [
        ("hot rows (stripe decomposition)", SourceDist::Row, 48),
        ("hot columns (stripe decomposition)", SourceDist::Column, 48),
        (
            "hot region (block decomposition)",
            SourceDist::SquareBlock,
            49,
        ),
        ("hot cross (row+column seam)", SourceDist::Cross, 48),
    ];

    println!(
        "{:<36} {:>14} {:>18} {:>8}",
        "scenario", "Br_xy_source", "Repos_xy_source", "gain%"
    );
    for (name, dist, s) in scenarios {
        let sources = dist.place(machine.shape, s);
        let payload = |src: usize| load_record(src, 1000 + src as u32);

        let plain = stp_broadcast::stp::runner::run_sources(
            &machine,
            LibraryKind::Nx,
            &sources,
            &payload,
            AlgoKind::BrXySource,
        )
        .expect("run failed");
        let repos = stp_broadcast::stp::runner::run_sources(
            &machine,
            LibraryKind::Nx,
            &sources,
            &payload,
            AlgoKind::ReposXySource,
        )
        .expect("run failed");
        assert!(plain.verified && repos.verified);

        let gain = (plain.makespan_ms() - repos.makespan_ms()) / plain.makespan_ms() * 100.0;
        println!(
            "{name:<36} {:>11.3} ms {:>15.3} ms {gain:>7.1}",
            plain.makespan_ms(),
            repos.makespan_ms()
        );
    }

    // After the broadcast every processor can recompute the partition
    // locally — demonstrate with the threads backend that each rank
    // really holds every load record.
    let shape = machine.shape;
    let sources = SourceDist::Cross.place(shape, 48);
    let out = run_threads(machine.p(), async |comm| {
        let payload = sources
            .binary_search(&comm.rank())
            .is_ok()
            .then(|| load_record(comm.rank(), 1000));
        let ctx = StpCtx {
            shape,
            sources: &sources,
            payload: payload.as_deref(),
        };
        let set = BrXySource.run(comm, &ctx).await;
        // Recompute: total load over all published records.
        set.sources()
            .map(|s| {
                let d = set.get(s).unwrap().to_vec();
                u32::from_le_bytes(d[4..8].try_into().unwrap()) as u64
            })
            .sum::<u64>()
    });
    let expect: u64 = sources.len() as u64 * 1000;
    assert!(out.results.iter().all(|&t| t == expect));
    println!(
        "\nall {} ranks agree on the global load total ({expect})",
        machine.p()
    );
}

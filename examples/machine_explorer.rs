//! Machine explorer: build custom machines out of the model crate's
//! parts — topologies, cost parameters, placements — and see how the
//! same s-to-p broadcast behaves across them.
//!
//! Demonstrates the full machine-model API: a Paragon mesh, a T3D torus
//! (block-rotated and scattered placements), and a hypothetical
//! hypercube machine.
//!
//! Run with: `cargo run --release --example machine_explorer`

use stp_broadcast::model::{Machine, MachineParams, MeshShape, Placement, Topology};
use stp_broadcast::prelude::*;

fn main() {
    let machines = vec![
        Machine::paragon(8, 8),
        Machine::t3d(64, 7),
        Machine::t3d_scattered(64, 7),
        // A hypothetical 64-node hypercube with Paragon-class software
        // costs but twice the link bandwidth.
        Machine::new(
            "Hypercube-64",
            Topology::Hypercube { dim: 6 },
            MachineParams {
                beta_ns_x1024: MachineParams::paragon_nx().beta_ns_x1024 / 2,
                ..MachineParams::paragon_nx()
            },
            Placement::Identity,
            MeshShape::new(8, 8),
        ),
    ];

    println!(
        "{:<24} {:>9} {:>12} {:>12} {:>12}",
        "machine", "diameter", "2-Step", "PersAlltoAll", "Br_Lin"
    );
    for machine in &machines {
        let p = machine.p();
        let diameter = (0..p)
            .flat_map(|u| (0..p).map(move |v| (u, v)))
            .map(|(u, v)| machine.distance(u, v))
            .max()
            .unwrap();
        print!("{:<24} {diameter:>9}", machine.name);
        for kind in [AlgoKind::TwoStep, AlgoKind::PersAlltoAll, AlgoKind::BrLin] {
            let exp = Experiment {
                machine,
                dist: SourceDist::Equal,
                s: 16,
                msg_len: 2048,
                kind,
            };
            let out = exp.run().expect("run failed");
            assert!(out.verified);
            print!(" {:>9.3} ms", out.makespan_ms());
        }
        println!();
    }

    println!("\nroute example on the T3D torus (virtual rank 0 -> 63):");
    let t3d = &machines[1];
    let route = t3d.route(0, 63);
    println!(
        "  {} hops through physical nodes {:?}",
        route.len(),
        route.iter().map(|l| l.to).collect::<Vec<_>>()
    );
}

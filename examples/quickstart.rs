//! Quickstart: broadcast from 5 sources on a simulated 8×8 Paragon,
//! compare three algorithms, and inspect the result.
//!
//! Run with: `cargo run --release --example quickstart`

use stp_broadcast::prelude::*;

fn main() {
    // A machine: 8x8 Intel Paragon (2-D mesh, NX cost parameters).
    let machine = Machine::paragon(8, 8);

    // A workload: 5 sources placed on the right diagonal, 2 KiB each.
    let dist = SourceDist::DiagRight;
    let (s, msg_len) = (5, 2048);

    println!("machine: {}  (p = {})", machine.name, machine.p());
    println!("sources: {:?}\n", dist.place(machine.shape, s));

    for kind in [AlgoKind::TwoStep, AlgoKind::BrLin, AlgoKind::BrXySource] {
        let exp = Experiment {
            machine: &machine,
            dist: dist.clone(),
            s,
            msg_len,
            kind,
        };
        let out = exp.run().expect("run failed");
        assert!(out.verified, "every rank must end with all 5 messages");
        println!(
            "{:<14} {:>8.3} ms   (contention stalls: {})",
            kind.name(),
            out.makespan_ms(),
            out.contention_events
        );
    }

    // The same algorithms also run on real OS threads (untimed) — handy
    // for checking they are honest message-passing programs.
    let shape = machine.shape;
    let sources = dist.place(shape, s);
    let out = run_threads(machine.p(), async |comm| {
        let payload = sources
            .binary_search(&comm.rank())
            .is_ok()
            .then(|| payload_for(comm.rank(), msg_len));
        let ctx = StpCtx {
            shape,
            sources: &sources,
            payload: payload.as_deref(),
        };
        BrLin::new().run(comm, &ctx).await.len()
    });
    assert!(out.results.iter().all(|&n| n == s));
    println!(
        "\nthreads backend: every rank holds {s} messages (wall {:?})",
        out.wall
    );
}

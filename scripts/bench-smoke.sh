#!/usr/bin/env bash
# Quick (~30 s) criterion smoke pass for CI and local sanity checks.
#
# Samples a representative subset of the figure benches with a tight
# per-benchmark budget and appends one JSON record per benchmark to
# BENCH_sweep.json (see the criterion shim's BENCH_SAMPLE_MS/BENCH_JSON
# knobs). The committed BENCH_sweep.json at the repository root is the
# reference baseline; regenerate it with this script after intentional
# performance changes.
#
# Every producing command is checked explicitly — a benchmark or repro
# binary that dies part-way must fail this script, not leave a
# truncated report — and every record is validated as JSON before the
# report is accepted.
#
#   ./scripts/bench-smoke.sh [output.json]
#
# Environment:
#   BENCH_SMOKE_MS       per-benchmark budget in ms (default 40)
#   STP_SWEEP_WORKERS    forwarded to the sweep engine benches
#   BENCH_SKIP_SERVE     1 = skip the serve-smoke stage that emits
#                        BENCH_serve.json (see scripts/serve-smoke.sh)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_sweep.json}"
# cargo runs benches with the package directory as cwd; hand the shim
# an absolute path so the records land at the repository root.
case "$OUT" in /*) ;; *) OUT="$PWD/$OUT" ;; esac
MS="${BENCH_SMOKE_MS:-40}"

fail() { echo "bench-smoke: $*" >&2; exit 1; }

cargo build -q --release -p stp-bench --benches --bins

# Build into a scratch file; only a fully validated run replaces $OUT.
# The trap also covers SIGINT/SIGTERM so an interrupted run leaves the
# committed report untouched and no scratch file behind — the final
# `mv` is the only write to $OUT.
TMP="$(mktemp "${TMPDIR:-/tmp}/bench-smoke.XXXXXX")"
trap 'rm -f "$TMP"' EXIT
trap 'rm -f "$TMP"; trap - INT TERM EXIT; exit 130' INT TERM
: > "$TMP"

# One filter per line: the sweep engine itself, the core-scaling
# curve (the fig03 grid at 1/2/4/8 sweep workers), the figure-2
# parameter pipeline, one full source sweep (every algorithm family),
# and the k-ported transmit path on the five-port acceptance shape.
# Filters are substrings of the full benchmark id, so they can overlap
# (e.g. `fig03` re-matches `sweep_engine_fig03_grid`); the dedupe pass
# below keeps the last record per id.
for filter in sweep_engine core_scaling kport fig02 fig03; do
  before=$(wc -l < "$TMP")
  BENCH_SAMPLE_MS="$MS" BENCH_JSON="$TMP" \
    cargo bench -q -p stp-bench --bench figures -- "$filter" \
    || fail "cargo bench --bench figures -- $filter exited with status $?"
  [ "$(wc -l < "$TMP")" -gt "$before" ] \
    || fail "bench filter '$filter' produced no records"
done

# Bytes-copied baseline: comm-layer copy counters must stay at zero on
# the rope path; payload-level copies are construction + framing only.
for algo in br_lin 2_step persalltoall; do
  stp_out="$(target/release/stp --machine paragon --rows 16 --cols 16 \
      --algo "$algo" --dist equal --s 24 --len 4096 --copy-stats)" \
    || fail "stp --copy-stats for '$algo' exited with status $?"
  record="$(printf '%s\n' "$stp_out" | grep '^{')" \
    || fail "stp --copy-stats for '$algo' emitted no JSON record"
  printf '%s\n' "$record" >> "$TMP"
done

# Fault-plane overhead: the same grid point clean and under a seeded
# transient-drop plan with retry. Both makespans are virtual time, so
# the ratio is exact, deterministic, and host-independent; delivery
# must stay complete (zero messages lost) for the record to be emitted.
run_point() {
  target/release/stp --machine paragon --rows 16 --cols 16 \
    --algo br_xy_source --dist cross --s 24 --len 4096 "$@"
}
clean_run="$(run_point)" \
  || fail "clean run for faulted_overhead exited with status $?"
faulted_run="$(run_point --faults 'seed=11,drop=1/8,retry=6:2000')" \
  || fail "faulted run for faulted_overhead exited with status $?"
CLEAN="$clean_run" FAULTED="$faulted_run" python3 - >> "$TMP" <<'EOF' \
  || fail "faulted_overhead derivation failed"
import json, os, re, sys

def makespan_ms(txt, tag):
    m = re.search(r"time ([0-9.]+) ms\s+verified (\S+)", txt)
    if not m:
        sys.exit(f"{tag} run printed no makespan:\n{txt}")
    if m.group(2) != "true":
        sys.exit(f"{tag} run did not verify")
    return float(m.group(1))

clean = makespan_ms(os.environ["CLEAN"], "clean")
faulted = makespan_ms(os.environ["FAULTED"], "faulted")
m = re.search(r"faults: (\d+) retransmit\(s\)\s+(\d+) message\(s\) lost",
              os.environ["FAULTED"])
if not m:
    sys.exit("faulted run printed no fault counters")
if m.group(2) != "0":
    sys.exit("faulted run lost messages despite its retry budget")
print(json.dumps({
    "id": "faulted_overhead/br_xy_source/16x16",
    "clean_ms": clean,
    "faulted_ms": faulted,
    "faulted_overhead": round(faulted / clean, 3),
    "retransmits": int(m.group(1)),
}, separators=(",", ":")))
EOF

# Multi-port acceptance: KPort_Lin on a five-port 10×10 Paragon must
# beat its single-port equivalent (Br_Lin on the one-port machine) by
# ≥2× simulated makespan on the fig-4 workload (DiagRight, s=30,
# L=16 KiB). Both makespans are virtual time — exact, deterministic,
# and host-independent — so the ratio is a hard gate, not a sample.
kport_point() {
  target/release/stp --machine paragon --rows 10 --cols 10 \
    --dist diag_right --s 30 --len 16384 "$@"
}
kport_run="$(kport_point --ports 5 --algo kport_lin)" \
  || fail "kport_lin 5-port run exited with status $?"
brlin_run="$(kport_point --algo br_lin)" \
  || fail "br_lin 1-port run exited with status $?"
KPORT="$kport_run" BRLIN="$brlin_run" python3 - >> "$TMP" <<'EOF' \
  || fail "kport_speedup derivation failed"
import json, os, re, sys

def makespan_ms(txt, tag):
    m = re.search(r"time ([0-9.]+) ms\s+verified (\S+)", txt)
    if not m:
        sys.exit(f"{tag} run printed no makespan:\n{txt}")
    if m.group(2) != "true":
        sys.exit(f"{tag} run did not verify")
    return float(m.group(1))

rec = {
    "id": "kport_speedup/kport_lin_5port_vs_br_lin_1port/10x10_s30_L16K",
    "unit": "virtual_makespan_ms",
    "kport_lin_virtual_makespan_ms": makespan_ms(os.environ["KPORT"], "kport_lin"),
    "br_lin_virtual_makespan_ms": makespan_ms(os.environ["BRLIN"], "br_lin"),
    "ports": 5,
}
# The speedup is derived from the record's own two virtual makespans
# and nothing else — never from the host wall-clock criterion samples
# that share this record-id family (the validation pass re-checks the
# division below, so a wall-clock number cannot slip in silently).
rec["speedup"] = round(
    rec["br_lin_virtual_makespan_ms"] / rec["kport_lin_virtual_makespan_ms"], 3)
if rec["speedup"] < 2.0:
    sys.exit(f"KPort_Lin speedup {rec['speedup']}x fell below the 2x acceptance "
             f"(kport {rec['kport_lin_virtual_makespan_ms']} ms vs br_lin "
             f"{rec['br_lin_virtual_makespan_ms']} ms)")
print(json.dumps(rec, separators=(",", ":")))
EOF

# Dedupe, then derive the executor acceptance numbers:
#   parallel_speedup — sequential / parallel wall-clock of the fig03
#     grid sweep. A wall-clock speedup claim is only meaningful with
#     ≥2 cores; on a 1-core host the record says so explicitly
#     ({"skipped":"insufficient_cores"}) instead of publishing ~1x
#     oversubscription noise as a measurement.
#   coop_speedup     — threaded / cooperative wall-clock of one 256-rank
#     simulation (the kernel-throughput acceptance, host-independent).
#   core_scaling     — the fig03 grid at 1/2/4/8 sweep workers as one
#     series (speedup vs the 1-worker run), same 1-core marker.
# The dedupe keeps the *last* record per id (overlapping filters above
# re-run some groups; the freshest measurement wins) and rewrites the
# report, so the committed file has exactly one record per id.
python3 - "$TMP" <<'EOF' || fail "dedupe/speedup derivation failed"
import json, os, sys

path = sys.argv[1]
recs = {}
order = []
with open(path) as fh:
    for line in fh:
        if line.strip():
            rec = json.loads(line)
            if rec["id"] not in recs:
                order.append(rec["id"])
            recs[rec["id"]] = rec  # last occurrence wins

# Criterion timings are host wall-clock. For the kport family that is
# ambiguous against the kport_speedup record's virtual makespans (the
# two share a workload and nearly a record-id), so those records carry
# the unit in their field names — wall_ns / wall_min_ns, never a bare
# mean_ns — plus an explicit unit tag. Every other criterion record
# keeps mean_ns: nothing virtual shares its id family.
for rec in recs.values():
    if rec["id"].startswith("kport_5port_10x10_s30_L16K/"):
        rec["unit"] = "wall_ns"
        if "mean_ns" in rec:
            rec["wall_ns"] = rec.pop("mean_ns")
        if "min_ns" in rec:
            rec["wall_min_ns"] = rec.pop("min_ns")

cores = os.cpu_count() or 1
derived = []

if cores >= 2:
    pairs = [("sweep_engine_fig03_grid/parallel_speedup",
              "sweep_engine_fig03_grid/sequential",
              "sweep_engine_fig03_grid/parallel")]
else:
    derived.append({
        "id": "sweep_engine_fig03_grid/parallel_speedup",
        "skipped": "insufficient_cores",
        "cores": cores,
    })
    pairs = []
pairs.append(("sweep_engine_kernel_16x16/coop_speedup",
              "sweep_engine_kernel_16x16/threaded",
              "sweep_engine_kernel_16x16/cooperative"))
for out_id, num, den in pairs:
    if num in recs and den in recs and recs[den]["mean_ns"]:
        derived.append({
            "id": out_id,
            "speedup": round(recs[num]["mean_ns"] / recs[den]["mean_ns"], 3),
            "cores": cores,
        })

scaling = []
for rec_id, rec in recs.items():
    if rec_id.startswith("core_scaling_10x10_grid/workers="):
        scaling.append((int(rec_id.split("workers=")[1]), rec["mean_ns"]))
scaling.sort()
if len(scaling) >= 2 and scaling[0][0] == 1 and all(ns for _, ns in scaling):
    if cores < 2:
        # The machinery ran, but a 1-worker-per-core host cannot show
        # real scaling. Record only that it was skipped, and drop the
        # raw per-worker records outright — publishing the ~1x
        # oversubscription timings alongside the marker invites reading
        # them as the curve (and downstream tooling did exactly that).
        series = {
            "id": "core_scaling/fig03_grid",
            "workers": [w for w, _ in scaling],
            "cores": cores,
            "skipped": "insufficient_cores",
        }
        for w, _ in scaling:
            raw_id = f"core_scaling_10x10_grid/workers={w}"
            recs.pop(raw_id, None)
            if raw_id in order:
                order.remove(raw_id)
    else:
        base = scaling[0][1]
        series = {
            "id": "core_scaling/fig03_grid",
            "workers": [w for w, _ in scaling],
            "mean_ns": [ns for _, ns in scaling],
            "speedup": [round(base / ns, 3) for _, ns in scaling],
            "cores": cores,
        }
    scaling_recs = [series]
else:
    scaling_recs = []

for rec in derived + scaling_recs:
    if rec["id"] not in recs:
        order.append(rec["id"])
    recs[rec["id"]] = rec
with open(path, "w") as fh:
    for rec_id in order:
        fh.write(json.dumps(recs[rec_id], separators=(",", ":")) + "\n")
EOF

# Validate every record before committing the report: each line must be
# a standalone JSON object with a non-empty "id", and the unit-
# namespacing invariants must hold (a skipped core-scaling series may
# not leak raw per-worker wall-clock records, the kport family may not
# publish ambiguous mean_ns fields, and the kport speedup must divide
# its own virtual makespans).
python3 - "$TMP" <<'EOF' || fail "JSON validation failed"
import json, sys

path = sys.argv[1]
with open(path) as fh:
    lines = [ln for ln in fh.read().splitlines() if ln.strip()]
if not lines:
    sys.exit("no benchmark records produced")
recs = {}
for n, line in enumerate(lines, 1):
    try:
        rec = json.loads(line)
    except ValueError as e:
        sys.exit(f"line {n} is not valid JSON: {e}\n  {line!r}")
    if not isinstance(rec, dict) or not rec.get("id"):
        sys.exit(f'line {n} is missing a non-empty "id": {line!r}')
    recs[rec["id"]] = rec

series = recs.get("core_scaling/fig03_grid")
if series is not None and "skipped" in series:
    stray = sorted(i for i in recs
                   if i.startswith("core_scaling_10x10_grid/workers="))
    if stray:
        sys.exit("core_scaling series is skipped but raw per-worker "
                 f"records leaked into the report: {stray}")

for rec_id, rec in recs.items():
    if rec_id.startswith("kport_5port_10x10_s30_L16K/"):
        if "mean_ns" in rec or "min_ns" in rec:
            sys.exit(f"{rec_id}: wall-clock fields must be namespaced as "
                     "wall_ns/wall_min_ns, found a bare mean_ns/min_ns")
        if rec.get("unit") != "wall_ns":
            sys.exit(f"{rec_id}: missing the 'wall_ns' unit tag")

speed = recs.get("kport_speedup/kport_lin_5port_vs_br_lin_1port/10x10_s30_L16K")
if speed is not None:
    if speed.get("unit") != "virtual_makespan_ms":
        sys.exit("kport_speedup record must carry unit=virtual_makespan_ms")
    want = round(speed["br_lin_virtual_makespan_ms"]
                 / speed["kport_lin_virtual_makespan_ms"], 3)
    if speed.get("speedup") != want:
        sys.exit(f"kport_speedup {speed.get('speedup')} was not derived from "
                 f"the virtual makespans (expected {want}) — a wall-clock "
                 "number leaked into the ratio")
EOF

mv "$TMP" "$OUT"
trap - EXIT
echo "wrote $(wc -l < "$OUT") validated benchmark records to $OUT"

# Serving-path latency datapoint: delegate to serve-smoke.sh (daemon +
# zipfian loadgen + SIGTERM drain), which gates the serving acceptance
# criteria and writes the validated BENCH_serve.json record next to
# this report. Latencies there are host_wall_us — never comparable to
# the virtual makespans above. Skip with BENCH_SKIP_SERVE=1.
if [ "${BENCH_SKIP_SERVE:-0}" != "1" ]; then
  ./scripts/serve-smoke.sh "$(dirname "$OUT")/BENCH_serve.json" \
    || fail "serve-smoke stage failed"
fi

#!/usr/bin/env bash
# Quick (~30 s) criterion smoke pass for CI and local sanity checks.
#
# Samples a representative subset of the figure benches with a tight
# per-benchmark budget and appends one JSON record per benchmark to
# BENCH_sweep.json (see the criterion shim's BENCH_SAMPLE_MS/BENCH_JSON
# knobs). The committed BENCH_sweep.json at the repository root is the
# reference baseline; regenerate it with this script after intentional
# performance changes.
#
#   ./scripts/bench-smoke.sh [output.json]
#
# Environment:
#   BENCH_SMOKE_MS       per-benchmark budget in ms (default 40)
#   STP_SWEEP_WORKERS    forwarded to the sweep engine benches
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_sweep.json}"
# cargo runs benches with the package directory as cwd; hand the shim
# an absolute path so the records land at the repository root.
case "$OUT" in /*) ;; *) OUT="$PWD/$OUT" ;; esac
MS="${BENCH_SMOKE_MS:-40}"

cargo build -q --release -p stp-bench --benches --bins
rm -f "$OUT"

# One filter per line: the sweep engine itself, the figure-2 parameter
# pipeline, and one full source sweep (every algorithm family).
for filter in sweep_engine fig02 fig03; do
  BENCH_SAMPLE_MS="$MS" BENCH_JSON="$OUT" \
    cargo bench -q -p stp-bench --bench figures -- "$filter"
done

# Bytes-copied baseline: comm-layer copy counters must stay at zero on
# the rope path; payload-level copies are construction + framing only.
for algo in br_lin 2_step persalltoall; do
  target/release/stp --machine paragon --rows 16 --cols 16 \
    --algo "$algo" --dist equal --s 24 --len 4096 --copy-stats \
    | grep '^{' >> "$OUT"
done

echo "wrote $(wc -l < "$OUT") benchmark records to $OUT"

#!/usr/bin/env bash
# Chaos & kill-and-resume smoke for the supervised execution plane —
# the CI gate proving that broken grid points are contained and that an
# interrupted sweep resumes losslessly.
#
# 1. Chaos lint (both executors): the quick matrix plus an injected
#    panicking algorithm and an injected deadlocking algorithm. The
#    sweep must finish every healthy point, quarantine `chaos:panic`
#    in the failure report, diagnose `chaos:deadlock` as a deadlock
#    finding, and exit 1.
# 2. Kill-and-resume: a checkpointed `stp sweep` is SIGTERMed mid-run,
#    then resumed. The resumed report must be byte-identical to an
#    uninterrupted reference run, with the checkpointed points
#    replayed instead of re-run.
#
#   ./scripts/chaos-smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

STP=target/release/stp
WORK="$(mktemp -d "${TMPDIR:-/tmp}/chaos-smoke.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT
trap 'rm -rf "$WORK"; trap - INT TERM EXIT; exit 130' INT TERM
fail() { echo "chaos-smoke: $*" >&2; exit 1; }

cargo build -q --release -p stp-bench --bin stp

# --- 1. chaos containment --------------------------------------------------
for exec in coop threaded; do
  set +e
  "$STP" lint --quick --chaos --exec "$exec" \
    --json "$WORK/chaos-$exec.json" > "$WORK/chaos-$exec.out" 2>&1
  status=$?
  set -e
  [ "$status" -eq 1 ] \
    || { cat "$WORK/chaos-$exec.out" >&2; \
         fail "chaos lint ($exec) must exit 1, exited $status"; }
  grep -q 'FAILED chaos:panic/' "$WORK/chaos-$exec.out" \
    || fail "chaos lint ($exec): panicking point not quarantined"
  grep -q 'deliberate chaos panic' "$WORK/chaos-$exec.out" \
    || fail "chaos lint ($exec): failure report lost the panic message"
  grep -Eq 'chaos:deadlock.*\[deadlock\]' "$WORK/chaos-$exec.out" \
    || fail "chaos lint ($exec): deadlocking point not diagnosed"
  python3 - "$WORK/chaos-$exec.json" <<'EOF' \
    || fail "chaos lint ($exec): report structure check failed"
import json, sys

with open(sys.argv[1]) as fh:
    rep = json.load(fh)
# quick matrix: 2 shapes x 8 dists x 2 source counts x 17 algorithms,
# plus the two chaos points.
healthy = rep["points"] - 2
entries = rep["entries"]
if len(entries) != healthy + 1:
    sys.exit(f"expected {healthy} healthy entries + the deadlock fixture, "
             f"got {len(entries)}")
if [f["id"] for f in rep["failures"]] != ["chaos:panic/E/4x4/s2"]:
    sys.exit(f"failures must name exactly the panicking point: "
             f"{rep['failures']}")
if rep["skipped"]:
    sys.exit(f"nothing may be skipped without a deadline: {rep['skipped']}")
dead = [e for e in entries if e["algo"] == "chaos:deadlock"]
if len(dead) != 1 or not dead[0]["deadlocked"]:
    sys.exit("the deadlock fixture must record a deadlocked schedule")
for e in entries:
    if e["algo"] != "chaos:deadlock" and e["findings"]:
        sys.exit(f"healthy point {e['algo']}/{e['dist']} has findings: "
                 f"{e['findings']}")
EOF
  echo "chaos-smoke: chaos lint contained both fixtures on $exec"
done

# --- 2. kill mid-sweep, resume, byte-compare -------------------------------
"$STP" sweep --json "$WORK/ref.json" > /dev/null \
  || fail "uninterrupted reference sweep failed"

set +e
timeout -s TERM 1 "$STP" sweep --checkpoint "$WORK/sweep.ckpt" \
  > /dev/null 2>&1
killed=$?
set -e
# 124 = killed mid-run (the interesting case); 0 = the host was fast
# enough to finish — the resume path is then a pure full replay, which
# the byte-compare below still gates.
[ "$killed" -eq 124 ] || [ "$killed" -eq 0 ] \
  || fail "interrupted sweep died unexpectedly (status $killed)"
[ -s "$WORK/sweep.ckpt" ] \
  || fail "no checkpoint survived the SIGTERM"

"$STP" sweep --checkpoint "$WORK/sweep.ckpt" --resume \
  --json "$WORK/resumed.json" > "$WORK/resume.out" 2>&1 \
  || { cat "$WORK/resume.out" >&2; fail "resumed sweep failed"; }
grep -Eq '[1-9][0-9]* replayed from checkpoint' "$WORK/resume.out" \
  || fail "resume re-ran everything instead of replaying the checkpoint"
cmp "$WORK/ref.json" "$WORK/resumed.json" \
  || fail "resumed report is not byte-identical to the uninterrupted run"
echo "chaos-smoke: killed sweep resumed byte-identically" \
     "($(grep -o '[0-9]* replayed' "$WORK/resume.out" | head -1))"

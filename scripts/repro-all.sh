#!/usr/bin/env bash
# Regenerate every figure/table of the paper plus the extension
# experiments into results/. Run from the repository root.
set -euo pipefail
cargo build --release -p stp-bench
mkdir -p results
BIN=target/release
for f in 01 02 03 04 05 06 07 08 09 10 11 12 13; do
  echo "== figure $f =="
  "$BIN/repro-fig$f" | tee "results/fig$f.txt"
done
for x in partitioning nx-vs-mpi varlen adaptive dissem hypercube trace naive contention; do
  echo "== $x =="
  "$BIN/repro-$x" | tee "results/$x.txt"
done
"$BIN/repro-report"
echo "All outputs written to results/ (CSV + SVG + REPORT.md)."

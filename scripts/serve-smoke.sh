#!/usr/bin/env bash
# End-to-end smoke of the planning daemon: start `stp serve` on an
# ephemeral port with a persistent plan cache, drive it with a zipfian
# stp-loadgen mix that includes malformed lines and chaos algorithms,
# and assert the serving-path acceptance criteria:
#
#   - cache hit rate ≥ 90% on the zipfian replay,
#   - cached plans ≥ 100x faster than cold planning (p50 vs p50),
#   - the daemon never crashes (chaos requests are quarantined),
#   - bounded memory (peak RSS well under 1 GiB),
#   - SIGTERM produces a clean drain with the cache flushed to a
#     valid, correctly-signed store.
#
# The validated loadgen record is written to BENCH_serve.json (one
# JSON line, every latency in host-wall microseconds — see the BENCH
# schema note in README.md). The committed BENCH_serve.json is the
# reference baseline; regenerate it with this script.
#
#   ./scripts/serve-smoke.sh [output.json]
#
# Environment:
#   SERVE_REQUESTS   total loadgen requests        (default 100000)
#   SERVE_CONNS      concurrent connections        (default 4)
#   SERVE_CHAOS      chaos request percentage      (default 1, i.e. 1%)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_serve.json}"
case "$OUT" in /*) ;; *) OUT="$PWD/$OUT" ;; esac
REQUESTS="${SERVE_REQUESTS:-100000}"
CONNS="${SERVE_CONNS:-4}"
CHAOS="${SERVE_CHAOS:-1}"

fail() { echo "serve-smoke: $*" >&2; exit 1; }

cargo build -q --release -p stp-bench --bins

WORK="$(mktemp -d "${TMPDIR:-/tmp}/serve-smoke.XXXXXX")"
DAEMON_PID=""
cleanup() {
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -9 "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT
trap 'cleanup; trap - INT TERM EXIT; exit 130' INT TERM

CACHE="$WORK/plan-cache.json"
target/release/stp serve --addr 127.0.0.1:0 --cache "$CACHE" --workers 2 \
  >"$WORK/daemon.out" 2>"$WORK/daemon.err" &
DAEMON_PID=$!

# The daemon prints `stp serve: listening on <addr>` on stdout once the
# socket is bound; an ephemeral port means the line is the only way to
# learn the address.
ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(sed -n 's/^stp serve: listening on //p' "$WORK/daemon.out" | head -n 1)"
  [ -n "$ADDR" ] && break
  kill -0 "$DAEMON_PID" 2>/dev/null \
    || { cat "$WORK/daemon.err" >&2; fail "daemon exited before readiness"; }
  sleep 0.1
done
[ -n "$ADDR" ] || fail "daemon never printed its readiness line"

target/release/stp-loadgen --addr "$ADDR" --requests "$REQUESTS" \
  --conns "$CONNS" --universe 64 --zipf 1.0 --chaos "$CHAOS" --seed 42 \
  --json "$WORK/loadgen.json" \
  || { cat "$WORK/daemon.err" >&2; fail "loadgen run failed"; }

kill -0 "$DAEMON_PID" 2>/dev/null \
  || { cat "$WORK/daemon.err" >&2; fail "daemon crashed under load"; }

# Acceptance gates on the loadgen record.
python3 - "$WORK/loadgen.json" <<'EOF' || fail "acceptance gates failed"
import json, sys

with open(sys.argv[1]) as fh:
    rec = json.loads(fh.read())
if rec["unit"] != "host_wall_us":
    sys.exit(f"loadgen record has unit {rec['unit']!r}, want host_wall_us")
if rec["hit_rate"] < 0.90:
    sys.exit(f"cache hit rate {rec['hit_rate']:.4f} fell below 0.90")
ratio = rec["cold_p50_us"] / max(rec["warm_p50_us"], 1)
if ratio < 100.0:
    sys.exit(f"cached plans only {ratio:.1f}x faster than cold (p50 "
             f"{rec['warm_p50_us']} us vs {rec['cold_p50_us']} us); need 100x")
if rec["chaos_pct"] > 0 and rec["quarantined"] == 0:
    sys.exit("chaos requests were sent but none were quarantined")
if rec["daemon_peak_rss_kb"] > 1_000_000:
    sys.exit(f"daemon peak RSS {rec['daemon_peak_rss_kb']} kB is not bounded")
print(f"serve-smoke: hit rate {rec['hit_rate']:.4f}, warm p50 "
      f"{rec['warm_p50_us']} us, cold p50 {rec['cold_p50_us']} us "
      f"({ratio:.0f}x), {rec['quarantined']} quarantined, "
      f"peak RSS {rec['daemon_peak_rss_kb']} kB")
EOF

# SIGTERM must drain cleanly: exit 0, a flushed cache that parses as a
# correctly-signed checkpoint, and the shutdown line in the log.
kill -TERM "$DAEMON_PID"
status=0
wait "$DAEMON_PID" || status=$?
DAEMON_PID=""
[ "$status" -eq 0 ] \
  || { cat "$WORK/daemon.err" >&2; fail "daemon exited $status on SIGTERM"; }
grep -q "clean shutdown" "$WORK/daemon.err" \
  || fail "daemon log is missing the clean-shutdown line"
python3 - "$CACHE" <<'EOF' || fail "flushed cache is not a valid store"
import json, sys
with open(sys.argv[1]) as fh:
    store = json.load(fh)
if store.get("sig") != "serve-cache:v1":
    sys.exit(f"cache store has sig {store.get('sig')!r}")
if not store.get("entries"):
    sys.exit("cache store flushed with no entries")
print(f"serve-smoke: cache flushed with {len(store['entries'])} entries")
EOF

mv "$WORK/loadgen.json" "$OUT"
echo "serve-smoke: wrote validated record to $OUT"

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This shim keeps the same authoring API
//! (`criterion_group!`, `criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`)
//! and measures wall-clock time with `std::time::Instant`. There are no
//! statistical reports; each benchmark prints its mean/min over the
//! collected samples.
//!
//! Environment knobs (used by `scripts/bench-smoke.sh`):
//! - `BENCH_SAMPLE_MS` — per-benchmark wall-clock budget in ms
//!   (default 300). Sampling stops at the budget even if fewer than
//!   `sample_size` samples were collected.
//! - `BENCH_JSON` — if set, one JSON object per benchmark is appended
//!   to this file: `{"id":..., "mean_ns":..., "min_ns":..., "samples":...}`.

use std::fmt::Display;
use std::io::Write as _;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level harness handle. Holds the optional name filter taken from
/// the command line (bare, non-flag arguments), as upstream does.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Reads the filter from argv, skipping cargo-bench flags like
    /// `--bench`. Called by `criterion_main!`.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--profile-time" || a == "--save-baseline" || a == "--baseline" {
                let _ = args.next();
            } else if !a.starts_with('-') {
                self.filter = Some(a);
            }
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().id;
        run_one(&id, self.filter.as_deref(), 10, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(
            &full,
            self.criterion.filter.as_deref(),
            self.sample_size,
            |b| f(b),
        );
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(
            &full,
            self.criterion.filter.as_deref(),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// A benchmark identifier: `group/function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

pub struct Bencher {
    samples: Vec<u64>,
    budget: std::time::Duration,
    target_samples: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up iteration, not recorded.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.target_samples {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed().as_nanos() as u64);
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }
}

fn sample_budget() -> std::time::Duration {
    let ms = std::env::var("BENCH_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300u64);
    std::time::Duration::from_millis(ms)
}

fn run_one<F: FnOnce(&mut Bencher)>(id: &str, filter: Option<&str>, sample_size: usize, f: F) {
    if let Some(filter) = filter {
        if !id.contains(filter) {
            return;
        }
    }
    let mut b = Bencher {
        samples: Vec::new(),
        budget: sample_budget(),
        target_samples: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<60} (no samples)");
        return;
    }
    let mean = b.samples.iter().sum::<u64>() / b.samples.len() as u64;
    let min = *b.samples.iter().min().unwrap();
    println!(
        "{id:<60} mean {:>10.3} ms   min {:>10.3} ms   (n={})",
        mean as f64 / 1e6,
        min as f64 / 1e6,
        b.samples.len()
    );
    if let Ok(path) = std::env::var("BENCH_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(
                file,
                "{{\"id\":\"{}\",\"mean_ns\":{},\"min_ns\":{},\"samples\":{}}}",
                id.replace('"', "'"),
                mean,
                min,
                b.samples.len()
            );
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 42), &42, |b, &x| b.iter(|| x * 2));
        g.finish();
    }

    #[test]
    fn harness_runs_and_records() {
        let mut c = Criterion::default();
        noop_bench(&mut c);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        // Would panic inside if executed; filtered out, it must not run.
        c.bench_function("skipped", |_b| panic!("should be filtered"));
    }
}

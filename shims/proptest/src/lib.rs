//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This shim reimplements the subset the workspace
//! uses: the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`,
//! `ProptestConfig::with_cases`, `any::<T>()`, integer/float range
//! strategies, tuple strategies, `prop_map`/`prop_flat_map`, and
//! `collection::{vec, btree_map}`.
//!
//! Test cases are generated from a deterministic per-test RNG (seeded
//! by hashing the test name), so failures reproduce across runs. There
//! is **no shrinking**: a failing case reports its case index and the
//! assertion message.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking;
    /// `generate` directly produces one value per test case.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always produces a clone of the same value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    (self.start as u128 + (rng.next_u64() as u128) % span) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    (lo as u128 + (rng.next_u64() as u128) % span) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(usize, u8, u16, u32, u64, i32, i64);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Uniform choice among boxed strategies of one value type; the
    /// target of the `prop_oneof!` macro.
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Union { arms: Vec::new() }
        }

        pub fn or<S: Strategy<Value = T> + 'static>(mut self, s: S) -> Self {
            self.arms.push(Box::new(s));
            self
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.arms.is_empty(), "empty prop_oneof!");
            let i = (rng.next_u64() as usize) % self.arms.len();
            self.arms[i].generate(rng)
        }
    }

    /// `any::<T>()`: uniform over the whole domain of `T`.
    pub struct Any<T>(::std::marker::PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(::std::marker::PhantomData)
    }

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Collection sizes: an exact `usize` or a `Range<usize>`.
    pub trait SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V, R> {
        key: K,
        value: V,
        size: R,
    }

    pub fn btree_map<K: Strategy, V: Strategy, R: SizeRange>(
        key: K,
        value: V,
        size: R,
    ) -> BTreeMapStrategy<K, V, R> {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V, R> Strategy for BTreeMapStrategy<K, V, R>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        R: SizeRange,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // Upstream treats the size as a target, deduplicating keys;
            // the map may come out smaller than requested.
            let n = self.size.sample(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

pub mod test_runner {
    /// Deterministic xoshiro256** test-case RNG.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// FNV-1a; used to derive a per-test seed from its name.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
        /// Upstream distinguishes rejections from failures; here a
        /// rejection simply fails the case too (we never filter).
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Entry macro: defines `#[test]` functions that run their body over
/// `cases` deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
                let mut rng = $crate::test_runner::TestRng::seed_from_u64(seed);
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{} (seed {:#x}): {}",
                            stringify!($name), case + 1, config.cases, seed, e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice among strategies producing the same value type.
/// Upstream supports weighted arms (`N => strat`); the workspace only
/// uses the unweighted form, which is all this shim implements.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($strat))+
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} != {:?})", format!($($fmt)*), a, b),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(n in 3usize..10, x in any::<u64>()) {
            prop_assert!((3..10).contains(&n));
            let _ = x;
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len {}", v.len());
        }

        #[test]
        fn flat_map_dependent(pair in (2usize..6).prop_flat_map(|n| {
            crate::collection::vec(0usize..n, n).prop_map(move |v| (n, v))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::seed_from_u64(5);
        let mut b = TestRng::seed_from_u64(5);
        let s = crate::collection::btree_map(0u32..100, any::<u8>(), 0..8);
        for _ in 0..20 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}

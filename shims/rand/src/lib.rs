//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real `rand`
//! cannot be fetched. This shim provides the small API surface the
//! workspace actually uses — `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over integer ranges, and `seq::SliceRandom::shuffle` —
//! with a deterministic xoshiro256** generator underneath. Seeded runs
//! are reproducible across processes and platforms, which is the only
//! property the workspace relies on (no seed produced by the upstream
//! crate is baked into any test).

use std::ops::{Range, RangeInclusive};

/// Construction of a reproducible generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling over a range. Implemented for the integer range
/// types the workspace uses (`a..b`, `a..=b` over usize/u32/u64/i64).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Uniform sample of the full value domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }
}

/// Types samplable uniformly from a raw u64.
pub trait Standard {
    fn from_u64(v: u64) -> Self;
}

impl Standard for u64 {
    fn from_u64(v: u64) -> Self {
        v
    }
}
impl Standard for u32 {
    fn from_u64(v: u64) -> Self {
        v as u32
    }
}
impl Standard for u8 {
    fn from_u64(v: u64) -> Self {
        v as u8
    }
}
impl Standard for bool {
    fn from_u64(v: u64) -> Self {
        v & 1 == 1
    }
}
impl Standard for f64 {
    fn from_u64(v: u64) -> Self {
        // 53 random mantissa bits in [0, 1).
        (v >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                (lo as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}
impl_int_range!(usize, u8, u16, u32, u64, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (replaces upstream's ChaCha12).
    /// The workspace never depends on the upstream keystream — only on
    /// seed-reproducibility, which this provides.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, per
            // the xoshiro authors' recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling, Fisher–Yates as in upstream `rand::seq`.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_runs_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&v));
            let w = rng.gen_range(10i64..20);
            assert!((10..20).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}

//! # stp-broadcast — facade crate
//!
//! Re-exports the full stack of the s-to-p broadcasting reproduction
//! (Hambrusch, Khokhar & Liu, ICPP 1996) under one roof:
//!
//! * [`model`] — machine models (topologies, routing, Paragon/T3D
//!   parameter presets, placement).
//! * [`sim`] — the deterministic discrete-event simulator.
//! * [`runtime`] — the `Communicator` abstraction with simulated and
//!   real-thread backends.
//! * [`coll`] — baseline collective operations.
//! * [`stp`] — the s-to-p broadcasting algorithms, distributions,
//!   metrics, and experiment runner.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use collectives as coll;
pub use mpp_model as model;
pub use mpp_runtime as runtime;
pub use mpp_sim as sim;
pub use stp_core as stp;

/// One-stop prelude for applications.
pub mod prelude {
    pub use mpp_model::{LibraryKind, Machine, MeshShape, Placement, Topology};
    pub use mpp_runtime::{run_simulated, run_threads, CommStats, Communicator, Message};
    pub use stp_core::prelude::*;
}

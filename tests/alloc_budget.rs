//! Allocation budgets for the kernel hot path.
//!
//! The zero-copy tests pin *byte* volume; these pin *allocation counts*.
//! An accidental clone in the rope path or a dropped arena would keep
//! `bytes_copied` flat while allocation counts explode, so each
//! algorithm gets an explicit per-run ceiling on
//!
//! * `payload_allocs` — real allocations inside `Payload` (arena chunk
//!   refills, dedicated large-payload buffers), and
//! * `comm_allocs`    — comm-layer buffer allocations, which must stay
//!   at exactly zero on the `send_payload` rope path.
//!
//! Each budget is measured on a *warm* run: the first run fills the
//! thread-local arena chunks and the retired-chunk pool, so a second
//! run on the same thread recycles instead of allocating — observed
//! warm counts are 0–1 per run (an occasional chunk refill). The
//! ceilings leave an order of magnitude of headroom over that, but a
//! per-message or per-merge allocation (hundreds to thousands per run
//! — `Br_Lin` moves ~900 messages) blows through them immediately.
//!
//! The executor is pinned to [`ExecMode::Cooperative`] regardless of
//! `STP_EXEC` (the TSan CI job exports `STP_EXEC=threaded`): the
//! threaded backend spreads ranks across OS threads, giving each its
//! own arena, which shifts chunk-refill counts for reasons unrelated
//! to the hot path under test.
//!
//! The copy-metrics counters are process-global and tests in one binary
//! run concurrently, so every test serialises on one lock.

use std::sync::Mutex;

use stp_broadcast::model::{MachineParams, Topology};
use stp_broadcast::prelude::*;
use stp_broadcast::runtime::{run_simulated_with, ExecMode, SimConfig};
use stp_broadcast::sim;

static COPY_METRICS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    COPY_METRICS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One cooperative run of the reference grid point (16x16 Paragon,
/// s=24 equally-spread sources, 4096-byte messages — the same point
/// `scripts/bench-smoke.sh` records as `copy_stats/...`). Returns
/// `(payload_allocs, comm_allocs)` for the run.
fn run_counting(machine: &Machine, kind: AlgoKind) -> (u64, u64) {
    let sources = SourceDist::Equal.place(machine.shape, 24);
    let alg = kind.build();
    let shape = machine.shape;
    let config = SimConfig {
        lib: kind.default_lib(),
        exec: ExecMode::Cooperative,
        ..SimConfig::default()
    };
    let before = sim::copy_metrics();
    let out = run_simulated_with(machine, &config, async |comm| {
        let payload = sources
            .binary_search(&comm.rank())
            .is_ok()
            .then(|| payload_for(comm.rank(), 4096));
        let ctx = StpCtx {
            shape,
            sources: &sources,
            payload: payload.as_deref(),
        };
        alg.run(comm, &ctx).await.len() == sources.len()
    });
    let payload_allocs = sim::copy_metrics().since(&before).allocs;
    assert!(
        out.results.iter().all(|&ok| ok),
        "{} failed verification",
        kind.name()
    );
    let comm_allocs = out.stats.iter().map(|s| s.allocs).sum();
    (payload_allocs, comm_allocs)
}

/// Warm up, then assert the measured run stays within budget.
fn assert_budget_on(machine: &Machine, kind: AlgoKind, payload_budget: u64) {
    let _g = lock();
    run_counting(machine, kind); // warmup: fill arena chunks + retired pool
    let (payload_allocs, comm_allocs) = run_counting(machine, kind);
    assert!(
        payload_allocs <= payload_budget,
        "{}: {payload_allocs} payload allocations in one warm run \
         (budget {payload_budget}) — arena regression?",
        kind.name()
    );
    assert_eq!(
        comm_allocs,
        0,
        "{}: comm layer allocated on the rope path",
        kind.name()
    );
}

fn assert_budget(kind: AlgoKind, payload_budget: u64) {
    assert_budget_on(&Machine::paragon(16, 16), kind, payload_budget);
}

#[test]
fn br_lin_alloc_budget() {
    // Warm observed 1 (one arena chunk refill); ~900 messages of
    // combining traffic, so a per-hop allocation would cost hundreds.
    assert_budget(AlgoKind::BrLin, 16);
}

#[test]
fn two_step_alloc_budget() {
    // Warm observed 1.
    assert_budget(AlgoKind::TwoStep, 16);
}

#[test]
fn pers_alltoall_alloc_budget() {
    // Warm observed 0.
    assert_budget(AlgoKind::PersAlltoAll, 16);
}

#[test]
fn kport_lin_alloc_budget() {
    // Five ports so every level ships a real multi-member batch: the
    // batch members clone one rope snapshot per lane (header copies,
    // not buffer allocations), so the warm count must stay at arena
    // chunk-refill noise just like the single-port algorithms.
    let machine = Machine::new(
        "Paragon 16x16 (5-port)",
        Topology::Mesh2D { rows: 16, cols: 16 },
        MachineParams::paragon_nx().with_ports(5),
        Placement::Identity,
        MeshShape::new(16, 16),
    );
    assert_budget_on(&machine, AlgoKind::KPortLin, 16);
}

//! The two backends must agree on *results*: for any algorithm and
//! input, the message set each rank ends with is identical on the timed
//! simulator and on real threads (timing differs, contents must not).

use proptest::prelude::*;
use stp_broadcast::prelude::*;

fn run_both(kind: AlgoKind, shape: MeshShape, sources: &[usize], len: usize) {
    let alg = kind.build();
    let machine = Machine::paragon(shape.rows, shape.cols);

    let sim = run_simulated(&machine, LibraryKind::Nx, async |comm| {
        let payload = sources
            .binary_search(&comm.rank())
            .is_ok()
            .then(|| payload_for(comm.rank(), len));
        let ctx = StpCtx {
            shape,
            sources,
            payload: payload.as_deref(),
        };
        alg.run(comm, &ctx).await
    });
    let threads = run_threads(shape.p(), async |comm| {
        let payload = sources
            .binary_search(&comm.rank())
            .is_ok()
            .then(|| payload_for(comm.rank(), len));
        let ctx = StpCtx {
            shape,
            sources,
            payload: payload.as_deref(),
        };
        alg.run(comm, &ctx).await
    });
    for rank in 0..shape.p() {
        assert_eq!(
            sim.results[rank],
            threads.results[rank],
            "{} rank {rank}: backends disagree",
            kind.name()
        );
    }
}

#[test]
fn all_algorithms_agree_across_backends() {
    let shape = MeshShape::new(4, 4);
    let sources = SourceDist::Cross.place(shape, 6);
    for &kind in AlgoKind::all() {
        run_both(kind, shape, &sources, 48);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn backends_agree_on_random_inputs(
        rows in 2usize..5,
        cols in 2usize..5,
        seed in any::<u64>(),
        kind_idx in 0usize..13,
        len in 0usize..128,
    ) {
        let shape = MeshShape::new(rows, cols);
        let p = shape.p();
        let s = (seed % p as u64).max(1) as usize;
        let sources = SourceDist::Random { seed }.place(shape, s);
        let kind = AlgoKind::all()[kind_idx % AlgoKind::all().len()];
        run_both(kind, shape, &sources, len);
    }
}

#[test]
fn large_machine_smoke() {
    // p = 512: thread-per-rank must stay workable on both backends and
    // the merge algorithms correct at scale.
    let machine = Machine::paragon(16, 32);
    for kind in [AlgoKind::BrLin, AlgoKind::BrXySource, AlgoKind::TwoStep] {
        let exp = Experiment {
            machine: &machine,
            dist: SourceDist::Equal,
            s: 100,
            msg_len: 256,
            kind,
        };
        let out = exp.run().expect("run failed");
        assert!(out.verified, "{} failed at p=512", kind.name());
    }
}

#[test]
fn large_t3d_smoke() {
    let machine = Machine::t3d(256, 9);
    let exp = Experiment {
        machine: &machine,
        dist: SourceDist::Random { seed: 4 },
        s: 64,
        msg_len: 512,
        kind: AlgoKind::MpiAlltoall,
    };
    assert!(exp.run().expect("run failed").verified);
}

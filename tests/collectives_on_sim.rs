//! Collectives correctness on the *timed* backend (their unit tests run
//! on threads; the algorithms exercise them indirectly — here they are
//! driven directly on the simulator, including cost sanity checks).

use stp_broadcast::coll;
use stp_broadcast::prelude::*;

#[test]
fn bcast_on_simulator_with_timing() {
    let machine = Machine::paragon(4, 4);
    let out = run_simulated(&machine, LibraryKind::Nx, async |comm| {
        let order: Vec<usize> = (0..comm.size()).collect();
        let data = (comm.rank() == 0).then(|| vec![7u8; 4096]);
        coll::bcast_from_first(comm, &order, data, 0).await
    });
    assert!(out.results.iter().all(|d| *d == vec![7u8; 4096]));
    // log2(16) = 4 rounds; the makespan must be at least 4 serialized
    // transfers of the payload and far less than 16 sequential ones.
    let one_transfer = machine.params.serialize_ns(4096);
    assert!(out.makespan_ns > 4 * one_transfer);
    assert!(out.makespan_ns < 16 * (one_transfer + 100_000));
}

#[test]
fn gather_hot_spot_shows_in_contention() {
    let machine = Machine::paragon(4, 4);
    let out = run_simulated(&machine, LibraryKind::Nx, async |comm| {
        let senders: Vec<usize> = (0..comm.size()).collect();
        let mine = vec![comm.rank() as u8; 2048];
        coll::gather_direct(comm, 0, &senders, Some(&mine), 1)
            .await
            .len()
    });
    assert_eq!(out.results[0], 16);
    assert!(
        out.contention_events > 0,
        "15 senders into one port must contend"
    );
}

#[test]
fn personalized_exchange_balances_iterations() {
    let machine = Machine::paragon(4, 4);
    let out = run_simulated(&machine, LibraryKind::Nx, async |comm| {
        let mine = vec![comm.rank() as u8; 256];
        let msgs = coll::personalized_from_sources(comm, &|_| true, Some(&mine), 5).await;
        msgs.len()
    });
    assert!(out.results.iter().all(|&n| n == 16));
    // Every rank does p-1 iterations — identical op counts.
    let ops: Vec<u64> = out.stats.iter().map(|s| s.total_ops()).collect();
    assert!(ops.iter().all(|&o| o == ops[0]), "{ops:?}");
}

#[test]
fn allgather_ring_on_simulator() {
    let machine = Machine::t3d(12, 3);
    let out = run_simulated(&machine, LibraryKind::Mpi, async |comm| {
        let order: Vec<usize> = (0..comm.size()).collect();
        let payload = [comm.rank() as u8; 32];
        coll::allgather_ring(comm, &order, &payload, 2).await.len()
    });
    assert!(out.results.iter().all(|&n| n == 12));
}

#[test]
fn scatter_and_reduce_roundtrip_on_simulator() {
    let machine = Machine::paragon(3, 3);
    let out = run_simulated(&machine, LibraryKind::Nx, async |comm| {
        let order: Vec<usize> = (0..comm.size()).collect();
        // Root scatters rank-indexed chunks ...
        let chunks = (comm.rank() == 0).then(|| {
            (0..comm.size())
                .map(|i| vec![i as u8; 16])
                .collect::<Vec<_>>()
        });
        let mine = coll::scatter_from_first(comm, &order, chunks, 10).await;
        assert_eq!(mine, vec![comm.rank() as u8; 16]);
        // ... then a reduction sums everyone's chunk value.
        let contrib = (mine[0] as u64).to_le_bytes();
        let sum = |a: &[u8], b: &[u8]| {
            (u64::from_le_bytes(a.try_into().unwrap()) + u64::from_le_bytes(b.try_into().unwrap()))
                .to_le_bytes()
                .to_vec()
        };
        coll::reduce_to_first(comm, &order, &contrib, &sum, 50)
            .await
            .map(|v| u64::from_le_bytes(v[..].try_into().unwrap()))
    });
    assert_eq!(out.results[0], Some(36)); // 0+1+...+8
    assert!(out.results[1..].iter().all(|r| r.is_none()));
}

#[test]
fn dissemination_barrier_synchronizes_clocks_on_simulator() {
    let machine = Machine::paragon(2, 4);
    let out = run_simulated(&machine, LibraryKind::Nx, async |comm| {
        if comm.rank() == 3 {
            comm.compute_ns(2_000_000); // one slow rank
        }
        coll::barrier_dissemination(comm, 900).await;
        comm.clock()
    });
    // After a dissemination barrier every rank's clock is at least the
    // slow rank's pre-barrier time.
    assert!(
        out.results.iter().all(|&c| c >= 2_000_000),
        "{:?}",
        out.results
    );
}

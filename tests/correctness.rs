//! Cross-crate correctness matrix: every algorithm × distribution ×
//! machine shape must leave every rank holding exactly the `s` source
//! payloads, on both the simulator and the real-threads backend.

use stp_broadcast::prelude::*;
use stp_broadcast::stp::runner::run_sources;

fn all_kinds() -> &'static [AlgoKind] {
    AlgoKind::all()
}

fn all_dists() -> Vec<SourceDist> {
    vec![
        SourceDist::Row,
        SourceDist::Column,
        SourceDist::Equal,
        SourceDist::DiagRight,
        SourceDist::DiagLeft,
        SourceDist::Band,
        SourceDist::Cross,
        SourceDist::SquareBlock,
        SourceDist::Random { seed: 77 },
    ]
}

#[test]
fn simulator_matrix_small_paragon() {
    let machine = Machine::paragon(4, 5);
    for &kind in all_kinds() {
        for dist in all_dists() {
            for s in [1usize, 3, 10, 20] {
                let exp = Experiment {
                    machine: &machine,
                    dist: dist.clone(),
                    s,
                    msg_len: 96,
                    kind,
                };
                let out = exp.run().expect("run failed");
                assert!(
                    out.verified,
                    "{} on {}({s}) failed verification",
                    kind.name(),
                    dist.name()
                );
            }
        }
    }
}

#[test]
fn simulator_matrix_odd_paragon() {
    // Odd dimensions exercise the non-power-of-two Br_Lin segments.
    let machine = Machine::paragon(3, 7);
    for &kind in all_kinds() {
        for s in [1usize, 2, 5, 13, 21] {
            let exp = Experiment {
                machine: &machine,
                dist: SourceDist::Equal,
                s,
                msg_len: 64,
                kind,
            };
            let out = exp.run().expect("run failed");
            assert!(out.verified, "{} s={s} failed on 3x7", kind.name());
        }
    }
}

#[test]
fn simulator_matrix_t3d() {
    let machine = Machine::t3d(32, 5);
    for &kind in all_kinds() {
        for s in [1usize, 8, 17, 32] {
            let exp = Experiment {
                machine: &machine,
                dist: SourceDist::Random { seed: s as u64 },
                s,
                msg_len: 128,
                kind,
            };
            let out = exp.run().expect("run failed");
            assert!(out.verified, "{} s={s} failed on T3D", kind.name());
        }
    }
}

#[test]
fn threads_matrix() {
    let shape = MeshShape::new(4, 4);
    for &kind in all_kinds() {
        for s in [1usize, 5, 16] {
            let sources = SourceDist::Equal.place(shape, s);
            let alg = kind.build();
            let out = run_threads(shape.p(), async |comm| {
                let payload = sources
                    .binary_search(&comm.rank())
                    .is_ok()
                    .then(|| payload_for(comm.rank(), 48));
                let ctx = StpCtx {
                    shape,
                    sources: &sources,
                    payload: payload.as_deref(),
                };
                let set = alg.run(comm, &ctx).await;
                set.sources().collect::<Vec<_>>() == sources
                    && sources
                        .iter()
                        .all(|&s| *set.get(s).unwrap() == payload_for(s, 48))
            });
            assert!(
                out.results.iter().all(|&ok| ok),
                "{} s={s} failed on threads backend",
                kind.name()
            );
        }
    }
}

#[test]
fn single_processor_machine() {
    let machine = Machine::paragon(1, 1);
    for kind in [AlgoKind::TwoStep, AlgoKind::BrLin, AlgoKind::PersAlltoAll] {
        let exp = Experiment {
            machine: &machine,
            dist: SourceDist::Equal,
            s: 1,
            msg_len: 32,
            kind,
        };
        assert!(
            exp.run().expect("run failed").verified,
            "{} on 1x1",
            kind.name()
        );
    }
}

#[test]
fn one_row_machine() {
    // Degenerate mesh: 1 x 8 — column dimension has a single element.
    let machine = Machine::paragon(1, 8);
    for &kind in all_kinds() {
        let exp = Experiment {
            machine: &machine,
            dist: SourceDist::Equal,
            s: 3,
            msg_len: 64,
            kind,
        };
        assert!(
            exp.run().expect("run failed").verified,
            "{} on 1x8",
            kind.name()
        );
    }
}

#[test]
fn empty_payloads_still_broadcast() {
    let machine = Machine::paragon(4, 4);
    for &kind in all_kinds() {
        let sources = SourceDist::DiagRight.place(machine.shape, 4);
        let out = run_sources(&machine, LibraryKind::Nx, &sources, &|_| Vec::new(), kind)
            .expect("run failed");
        assert!(out.verified, "{} with zero-length messages", kind.name());
    }
}

#[test]
fn variable_length_payloads() {
    // Paper §5: different message lengths did not change the findings;
    // at minimum they must stay correct.
    let machine = Machine::paragon(4, 5);
    for &kind in all_kinds() {
        let sources = SourceDist::Cross.place(machine.shape, 7);
        let out = run_sources(
            &machine,
            LibraryKind::Nx,
            &sources,
            &|src| payload_for(src, 32 + (src % 5) * 100),
            kind,
        )
        .expect("run failed");
        assert!(out.verified, "{} with variable lengths", kind.name());
    }
}

//! The simulator must be bit-for-bit deterministic: identical inputs →
//! identical virtual times, per-rank statistics, and results, regardless
//! of host thread scheduling.

use stp_broadcast::prelude::*;

fn run_twice(machine: &Machine, kind: AlgoKind, dist: SourceDist, s: usize, len: usize) {
    let exp = Experiment {
        machine,
        dist,
        s,
        msg_len: len,
        kind,
    };
    let a = exp.run().expect("run failed");
    let b = exp.run().expect("run failed");
    assert_eq!(
        a.makespan_ns,
        b.makespan_ns,
        "{} makespan differs",
        kind.name()
    );
    assert_eq!(
        a.finish_ns,
        b.finish_ns,
        "{} finish times differ",
        kind.name()
    );
    assert_eq!(
        a.contention_ns,
        b.contention_ns,
        "{} contention differs",
        kind.name()
    );
    for (ra, rb) in a.stats.iter().zip(&b.stats) {
        assert_eq!(ra, rb, "{} stats differ", kind.name());
    }
}

#[test]
fn all_algorithms_deterministic_on_paragon() {
    let machine = Machine::paragon(5, 6);
    for &kind in AlgoKind::all() {
        run_twice(&machine, kind, SourceDist::Cross, 9, 512);
    }
}

#[test]
fn all_algorithms_deterministic_on_t3d() {
    let machine = Machine::t3d(27, 3);
    for &kind in AlgoKind::all() {
        run_twice(&machine, kind, SourceDist::Random { seed: 1 }, 11, 256);
    }
}

#[test]
fn determinism_across_many_repeats() {
    let machine = Machine::paragon(8, 8);
    let exp = Experiment {
        machine: &machine,
        dist: SourceDist::Equal,
        s: 13,
        msg_len: 1024,
        kind: AlgoKind::BrXySource,
    };
    let reference = exp.run().expect("run failed");
    for _ in 0..5 {
        let again = exp.run().expect("run failed");
        assert_eq!(reference.makespan_ns, again.makespan_ns);
    }
}

#[test]
fn flat_and_rope_sends_cost_identical_virtual_time() {
    // Virtual send cost must depend only on the byte length, not on
    // whether the payload arrived as one flat buffer or a multi-segment
    // rope — otherwise the zero-copy conversion would shift the paper's
    // reproduced timings.
    let machine = Machine::paragon(3, 4);
    let p = machine.p();
    let ring = |payload_of: &(dyn Fn() -> Option<mpp_sim::Payload> + Sync)| {
        run_simulated(&machine, LibraryKind::Nx, async |comm| {
            let me = comm.rank();
            let next = (me + 1) % p;
            match payload_of() {
                Some(rope) => comm.send_payload(next, 5, rope),
                None => comm.send(next, 5, &[0x5A; 1536]),
            }
            comm.recv(Some((me + p - 1) % p), Some(5)).await.data.len()
        })
    };
    let flat = ring(&|| None);
    let rope = ring(&|| {
        // Same 1536 bytes as three shared 512-byte segments.
        let seg = mpp_sim::Payload::from_slice(&[0x5A; 512]);
        let mut rope = seg.clone();
        rope.push_payload(&seg);
        rope.push_payload(&seg);
        Some(rope)
    });
    assert!(flat.results.iter().all(|&n| n == 1536));
    assert_eq!(flat.results, rope.results);
    assert_eq!(
        flat.makespan_ns, rope.makespan_ns,
        "rope framing changed virtual time"
    );
    assert_eq!(flat.finish_ns, rope.finish_ns);
    assert_eq!(flat.contention_ns, rope.contention_ns);
}

#[test]
fn parallel_sweep_bit_identical_to_sequential() {
    // The sweep engine only reorders *which host thread* runs each
    // simulation; every virtual quantity must be unchanged.
    let machine = Machine::paragon(6, 6);
    let machine = &machine;
    let grid: Vec<Experiment> = [AlgoKind::TwoStep, AlgoKind::BrLin, AlgoKind::ReposXySource]
        .iter()
        .flat_map(|&kind| {
            [4usize, 12, 30].into_iter().map(move |s| Experiment {
                machine,
                dist: SourceDist::Cross,
                s,
                msg_len: 768,
                kind,
            })
        })
        .collect();
    let seq = SweepRunner::sequential().run_experiments(&grid);
    let par = SweepRunner::new().with_workers(4).run_experiments(&grid);
    assert_eq!(seq.len(), par.len());
    for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
        assert!(a.verified && b.verified);
        assert_eq!(
            a.makespan_ns, b.makespan_ns,
            "grid point {i} makespan differs"
        );
        assert_eq!(
            a.finish_ns, b.finish_ns,
            "grid point {i} finish times differ"
        );
        assert_eq!(a.contention_events, b.contention_events);
        assert_eq!(a.contention_ns, b.contention_ns);
        assert_eq!(a.stats, b.stats, "grid point {i} statistics differ");
    }
}

#[test]
fn different_seeds_change_t3d_times() {
    // The rotated-block placement must actually depend on the seed, and
    // timing must follow it.
    let a = Experiment {
        machine: &Machine::t3d(64, 1),
        dist: SourceDist::SquareBlock,
        s: 16,
        msg_len: 4096,
        kind: AlgoKind::BrLin,
    }
    .run()
    .expect("run failed");
    let mut any_differs = false;
    for seed in 2..8 {
        let b = Experiment {
            machine: &Machine::t3d(64, seed),
            dist: SourceDist::SquareBlock,
            s: 16,
            msg_len: 4096,
            kind: AlgoKind::BrLin,
        }
        .run()
        .expect("run failed");
        assert!(b.verified);
        if b.makespan_ns != a.makespan_ns {
            any_differs = true;
        }
    }
    assert!(any_differs, "placement seed has no timing effect at all?");
}

//! The simulator must be bit-for-bit deterministic: identical inputs →
//! identical virtual times, per-rank statistics, and results, regardless
//! of host thread scheduling.

use stp_broadcast::prelude::*;

fn run_twice(machine: &Machine, kind: AlgoKind, dist: SourceDist, s: usize, len: usize) {
    let exp = Experiment { machine, dist, s, msg_len: len, kind };
    let a = exp.run();
    let b = exp.run();
    assert_eq!(a.makespan_ns, b.makespan_ns, "{} makespan differs", kind.name());
    assert_eq!(a.finish_ns, b.finish_ns, "{} finish times differ", kind.name());
    assert_eq!(a.contention_ns, b.contention_ns, "{} contention differs", kind.name());
    for (ra, rb) in a.stats.iter().zip(&b.stats) {
        assert_eq!(ra, rb, "{} stats differ", kind.name());
    }
}

#[test]
fn all_algorithms_deterministic_on_paragon() {
    let machine = Machine::paragon(5, 6);
    for &kind in AlgoKind::all() {
        run_twice(&machine, kind, SourceDist::Cross, 9, 512);
    }
}

#[test]
fn all_algorithms_deterministic_on_t3d() {
    let machine = Machine::t3d(27, 3);
    for &kind in AlgoKind::all() {
        run_twice(&machine, kind, SourceDist::Random { seed: 1 }, 11, 256);
    }
}

#[test]
fn determinism_across_many_repeats() {
    let machine = Machine::paragon(8, 8);
    let exp = Experiment {
        machine: &machine,
        dist: SourceDist::Equal,
        s: 13,
        msg_len: 1024,
        kind: AlgoKind::BrXySource,
    };
    let reference = exp.run();
    for _ in 0..5 {
        let again = exp.run();
        assert_eq!(reference.makespan_ns, again.makespan_ns);
    }
}

#[test]
fn different_seeds_change_t3d_times() {
    // The rotated-block placement must actually depend on the seed, and
    // timing must follow it.
    let a = Experiment {
        machine: &Machine::t3d(64, 1),
        dist: SourceDist::SquareBlock,
        s: 16,
        msg_len: 4096,
        kind: AlgoKind::BrLin,
    }
    .run();
    let mut any_differs = false;
    for seed in 2..8 {
        let b = Experiment {
            machine: &Machine::t3d(64, seed),
            dist: SourceDist::SquareBlock,
            s: 16,
            msg_len: 4096,
            kind: AlgoKind::BrLin,
        }
        .run();
        assert!(b.verified);
        if b.makespan_ns != a.makespan_ns {
            any_differs = true;
        }
    }
    assert!(any_differs, "placement seed has no timing effect at all?");
}

//! Differential determinism: the cooperative executor must be
//! *indistinguishable* from the threaded trap/grant executor in every
//! observable output — virtual times, per-rank `CommStats`, and the
//! recorded symbolic communication schedule, event for event.
//!
//! The argument in DESIGN.md §8 is that both executors drive the same
//! `KernelCore` and only differ in how a rank program is resumed; these
//! tests are the empirical check of that argument over the analyzer's
//! full lint matrix (every algorithm × the paper's eight distributions
//! × the acceptance shapes). The quick subset runs in tier-1; the full
//! matrix is `#[ignore]`d for tier-2 (`cargo test -- --ignored`).

use stp_broadcast::model::{Machine, MachineParams, MeshShape, Placement, Topology};
use stp_broadcast::runtime::{ExecMode, FaultPlan};
use stp_broadcast::stp::distribution::SourceDist;
use stp_broadcast::stp::msgset::payload_for;
use stp_broadcast::stp::runner::{
    record_sources_exec, record_sources_faulty, AlgoKind, RecordedRun,
};

/// The eight named source distributions of the paper.
fn paper_dists() -> Vec<SourceDist> {
    vec![
        SourceDist::Row,
        SourceDist::Column,
        SourceDist::Equal,
        SourceDist::DiagRight,
        SourceDist::DiagLeft,
        SourceDist::Band,
        SourceDist::Cross,
        SourceDist::SquareBlock,
    ]
}

/// Record one grid point on the given executor.
fn record(
    machine: &Machine,
    dist: &SourceDist,
    s: usize,
    kind: AlgoKind,
    exec: ExecMode,
) -> RecordedRun {
    let sources = dist.place(machine.shape, s);
    let alg = kind.build();
    record_sources_exec(
        machine,
        kind.default_lib(),
        &sources,
        &|src| payload_for(src, 64),
        alg.as_ref(),
        exec,
    )
}

/// Compare a coop recording against a threaded recording of the same
/// grid point: schedules, virtual times, and per-rank stats must all be
/// byte-identical.
fn assert_identical(machine: &Machine, dist: &SourceDist, s: usize, kind: AlgoKind) {
    let coop = record(machine, dist, s, kind, ExecMode::Cooperative);
    let thr = record(machine, dist, s, kind, ExecMode::Threaded);
    let tag = format!(
        "{} / {} on {}x{} s={s}",
        kind.name(),
        dist.name(),
        machine.shape.rows,
        machine.shape.cols
    );
    assert_eq!(coop.deadlocked, thr.deadlocked, "{tag}: deadlock verdict");
    assert_eq!(coop.events, thr.events, "{tag}: recorded schedules");
    let (a, b) = (
        coop.outcome.expect("coop outcome"),
        thr.outcome.expect("threaded outcome"),
    );
    assert_eq!(a.makespan_ns, b.makespan_ns, "{tag}: makespan");
    assert_eq!(a.finish_ns, b.finish_ns, "{tag}: per-rank finish times");
    assert_eq!(a.stats, b.stats, "{tag}: per-rank CommStats");
    assert_eq!(a.verified, b.verified, "{tag}: verification");
    assert_eq!(
        a.contention_events, b.contention_events,
        "{tag}: contention events"
    );
    assert_eq!(a.contention_ns, b.contention_ns, "{tag}: contention time");
    assert!(a.verified, "{tag}: run must verify");
}

/// A Paragon-parameterized mesh with five injection ports per node —
/// the shape where `send_batch` groups actually fan across port slots,
/// so the coop poll-all-at-once path and the threaded same-tick
/// arbitration path genuinely diverge in mechanism.
fn five_port_paragon(rows: usize, cols: usize) -> Machine {
    Machine::new(
        "Paragon (5-port)",
        Topology::Mesh2D { rows, cols },
        MachineParams::paragon_nx().with_ports(5),
        Placement::Identity,
        MeshShape::new(rows, cols),
    )
}

/// The k-ported algorithms plus their single-port reference.
const KPORT_KINDS: [AlgoKind; 4] = [
    AlgoKind::KPortLin,
    AlgoKind::KPortScatter,
    AlgoKind::KPortAlltoall,
    AlgoKind::BrLin,
];

/// Source counts checked per shape (mirrors the lint matrix).
fn source_counts(p: usize) -> Vec<usize> {
    let sparse = (p / 4).max(2).min(p);
    if sparse == p {
        vec![p]
    } else {
        vec![sparse, p]
    }
}

fn sweep(shapes: &[(usize, usize)], dists: &[SourceDist], kinds: &[AlgoKind]) {
    for &(rows, cols) in shapes {
        let machine = Machine::paragon(rows, cols);
        for dist in dists {
            for s in source_counts(machine.p()) {
                for &kind in kinds {
                    assert_identical(&machine, dist, s, kind);
                }
            }
        }
    }
}

/// Tier-1 subset: every algorithm on one small shape with two
/// representative distributions — fast, runs in the default suite.
#[test]
fn executors_agree_quick() {
    sweep(
        &[(4, 4)],
        &[SourceDist::Equal, SourceDist::DiagRight],
        AlgoKind::all(),
    );
}

/// Tier-1 subset: shape with a prime dimension (non-power-of-two
/// paths) on the remaining distributions, merge algorithms only.
#[test]
fn executors_agree_quick_odd_shape() {
    sweep(
        &[(8, 3)],
        &[SourceDist::Row, SourceDist::Cross],
        &[AlgoKind::BrLin, AlgoKind::BrXySource, AlgoKind::TwoStep],
    );
}

/// Record one grid point on the given executor with a fault plan.
fn record_faulted(
    machine: &Machine,
    dist: &SourceDist,
    s: usize,
    kind: AlgoKind,
    exec: ExecMode,
    plan: &FaultPlan,
) -> RecordedRun {
    let sources = dist.place(machine.shape, s);
    let alg = kind.build();
    record_sources_faulty(
        machine,
        kind.default_lib(),
        &sources,
        &|src| payload_for(src, 64),
        alg.as_ref(),
        exec,
        Some(plan),
    )
}

/// The equivalence argument must survive fault injection: drop/retry
/// decisions are pure hashes of `(seed, seq, attempt)` and rerouting is
/// a deterministic function of virtual time, so an identical plan must
/// produce byte-identical recordings — including the `Dropped` events —
/// on both executors.
fn assert_identical_faulted(
    machine: &Machine,
    dist: &SourceDist,
    s: usize,
    kind: AlgoKind,
    plan: &FaultPlan,
) {
    let coop = record_faulted(machine, dist, s, kind, ExecMode::Cooperative, plan);
    let thr = record_faulted(machine, dist, s, kind, ExecMode::Threaded, plan);
    let tag = format!(
        "{} / {} on {}x{} s={s} (faulted)",
        kind.name(),
        dist.name(),
        machine.shape.rows,
        machine.shape.cols
    );
    assert_eq!(coop.deadlocked, thr.deadlocked, "{tag}: deadlock verdict");
    assert_eq!(coop.events, thr.events, "{tag}: recorded schedules");
    let (a, b) = (
        coop.outcome.expect("coop outcome"),
        thr.outcome.expect("threaded outcome"),
    );
    assert_eq!(a.makespan_ns, b.makespan_ns, "{tag}: makespan");
    assert_eq!(a.finish_ns, b.finish_ns, "{tag}: per-rank finish times");
    assert_eq!(a.stats, b.stats, "{tag}: per-rank CommStats");
    assert_eq!(a.verified, b.verified, "{tag}: verification");
    assert_eq!(
        a.contention_events, b.contention_events,
        "{tag}: contention events"
    );
    assert_eq!(a.contention_ns, b.contention_ns, "{tag}: contention time");
    assert!(a.verified, "{tag}: retries must restore full delivery");
}

/// Tier-1: every algorithm under a transient-drop plan with retry on a
/// small shape — same plan, both executors, byte-identical recordings
/// and full delivery.
#[test]
fn executors_agree_under_transient_drops() {
    let machine = Machine::paragon(4, 4);
    let plan = FaultPlan::transient_drops(13, 1, 8, 6);
    for &kind in AlgoKind::all() {
        assert_identical_faulted(&machine, &SourceDist::Equal, 5, kind, &plan);
    }
}

/// Tier-1: link outages force detours; the rerouted schedule must stay
/// executor-independent too.
#[test]
fn executors_agree_under_link_outages() {
    let machine = Machine::paragon(4, 4);
    let plan = FaultPlan::parse("link=5-6@0..,link=9-10@0..200000").expect("valid spec");
    for &kind in &[AlgoKind::BrLin, AlgoKind::BrXySource, AlgoKind::TwoStep] {
        assert_identical_faulted(&machine, &SourceDist::Cross, 6, kind, &plan);
    }
}

/// Tier-1: multi-port equivalence. On a five-port machine every level
/// of a k-ported algorithm issues a real multi-member `send_batch`;
/// the batch must land on the same injection slots (ascending, in
/// declared order) under both executors, making the recordings
/// byte-identical.
#[test]
fn executors_agree_multiport() {
    let machine = five_port_paragon(4, 4);
    for dist in [SourceDist::Equal, SourceDist::DiagRight] {
        for s in source_counts(machine.p()) {
            for kind in KPORT_KINDS {
                assert_identical(&machine, &dist, s, kind);
            }
        }
    }
}

/// Tier-1: multi-port equivalence on a prime-dimension shape, where
/// lane segment lengths differ and some levels batch fewer than k
/// members.
#[test]
fn executors_agree_multiport_odd_shape() {
    let machine = five_port_paragon(3, 5);
    for kind in KPORT_KINDS {
        assert_identical(&machine, &SourceDist::Cross, 6, kind);
    }
}

/// Tier-1: dropped batch members retry independently — each member of
/// a `send_batch` keeps its own `(seed, seq, attempt)` hash chain — and
/// the recovery schedule must still be executor-independent.
#[test]
fn executors_agree_multiport_under_transient_drops() {
    let machine = five_port_paragon(4, 4);
    let plan = FaultPlan::transient_drops(13, 1, 8, 6);
    for kind in KPORT_KINDS {
        assert_identical_faulted(&machine, &SourceDist::Equal, 5, kind, &plan);
    }
}

/// Tier-1: link outages under batched transmits — the detoured batch
/// members contend for the surviving links, and the rerouted schedule
/// must stay executor-independent.
#[test]
fn executors_agree_multiport_under_link_outages() {
    let machine = five_port_paragon(4, 4);
    let plan = FaultPlan::parse("link=5-6@0..,link=9-10@0..200000").expect("valid spec");
    for kind in KPORT_KINDS {
        assert_identical_faulted(&machine, &SourceDist::Cross, 6, kind, &plan);
    }
}

/// Tier-2: the full lint matrix — every algorithm × all eight paper
/// distributions × the acceptance shapes. Minutes of runtime; run with
/// `cargo test --test exec_equivalence -- --ignored`.
#[test]
#[ignore = "full matrix is tier-2; run with -- --ignored"]
fn executors_agree_full_matrix() {
    sweep(
        &[(4, 4), (8, 4), (16, 16), (8, 3)],
        &paper_dists(),
        AlgoKind::all(),
    );
}

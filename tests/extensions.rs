//! Integration tests for the extensions beyond the paper: source
//! announcement, N-d `Br_dims`, the dissemination all-gather, adaptive
//! repositioning and recursive partitioning — each exercised end-to-end
//! on the timed simulator (their unit tests use the threads backend).

use stp_broadcast::prelude::*;
use stp_broadcast::stp::algorithms::{
    BrDims, DissemAllGather, GridShape, PartRecursive, StpAlgorithm,
};
use stp_broadcast::stp::announce::announce_and_broadcast;

#[test]
fn announce_then_broadcast_on_simulator() {
    let machine = Machine::paragon(4, 4);
    let shape = machine.shape;
    let sources = [3usize, 8, 12];
    let out = run_simulated(&machine, LibraryKind::Nx, async |comm| {
        // Each rank knows only whether *it* has a message.
        let payload = sources
            .contains(&comm.rank())
            .then(|| payload_for(comm.rank(), 256));
        announce_and_broadcast(comm, shape, payload.as_deref(), &BrLin::new())
            .await
            .map(|set| set.sources().collect::<Vec<_>>())
    });
    for r in out.results {
        assert_eq!(r.unwrap(), sources.to_vec());
    }
    // The announcement costs log p rounds of p-word tables — small
    // against the broadcast itself.
    assert!(out.makespan_ns > 0);
}

#[test]
fn br_dims_on_t3d_native_3d_grid() {
    // Run Br_dims on the T3D's natural 3-D factorization and verify it
    // against Br_Lin on the same machine.
    let machine = Machine::t3d(64, 11);
    let shape = machine.shape;
    let grid = GridShape::cube_for(64);
    let sources = SourceDist::Equal.place(shape, 9);
    let alg = BrDims::new(grid);

    let dims_out = run_simulated(&machine, LibraryKind::Mpi, async |comm| {
        let payload = sources
            .binary_search(&comm.rank())
            .is_ok()
            .then(|| payload_for(comm.rank(), 512));
        let ctx = StpCtx {
            shape,
            sources: &sources,
            payload: payload.as_deref(),
        };
        let set = alg.run(comm, &ctx).await;
        set.sources().collect::<Vec<_>>() == sources
            && sources
                .iter()
                .all(|&s| *set.get(s).unwrap() == payload_for(s, 512))
    });
    assert!(dims_out.results.iter().all(|&ok| ok));
}

#[test]
fn dissem_zero_copy_beats_alltoall_on_t3d() {
    // The EXPERIMENTS.md extension claim, pinned: a zero-copy
    // dissemination allgather undercuts MPI_Alltoall on the Fig-13a
    // workload.
    let machine = Machine::t3d(128, 42);
    let shape = machine.shape;
    let sources = SourceDist::Equal.place(shape, 40);
    let alg = DissemAllGather::zero_copy();
    let dissem = run_simulated(&machine, LibraryKind::Mpi, async |comm| {
        let payload = sources
            .binary_search(&comm.rank())
            .is_ok()
            .then(|| payload_for(comm.rank(), 4096));
        let ctx = StpCtx {
            shape,
            sources: &sources,
            payload: payload.as_deref(),
        };
        alg.run(comm, &ctx).await.len()
    });
    assert!(dissem.results.iter().all(|&n| n == 40));

    let alltoall = Experiment {
        machine: &machine,
        dist: SourceDist::Equal,
        s: 40,
        msg_len: 4096,
        kind: AlgoKind::MpiAlltoall,
    }
    .run()
    .expect("run failed");
    assert!(
        dissem.makespan_ns < alltoall.makespan_ns,
        "zero-copy dissemination ({}) must beat Alltoall ({})",
        dissem.makespan_ns,
        alltoall.makespan_ns
    );
}

#[test]
fn adaptive_runs_through_algokind() {
    let machine = Machine::paragon(8, 8);
    for dist in [SourceDist::SquareBlock, SourceDist::Row] {
        let exp = Experiment {
            machine: &machine,
            dist,
            s: 16,
            msg_len: 1024,
            kind: AlgoKind::ReposAdaptiveXySource,
        };
        assert!(exp.run().expect("run failed").verified);
    }
}

#[test]
fn recursive_partitioning_monotone_in_depth() {
    // Deeper partitioning must not get better on the Paragon (the
    // paper's negative result, extended): allow small noise but require
    // depth 3 ≥ depth 1.
    let machine = Machine::paragon(16, 16);
    let shape = machine.shape;
    let sources = SourceDist::Cross.place(shape, 75);
    let ms_for = |depth: usize| {
        let alg = PartRecursive::new(BrXySource, depth, "PartRec");
        let out = run_simulated(&machine, LibraryKind::Nx, async |comm| {
            let payload = sources
                .binary_search(&comm.rank())
                .is_ok()
                .then(|| payload_for(comm.rank(), 6144));
            let ctx = StpCtx {
                shape,
                sources: &sources,
                payload: payload.as_deref(),
            };
            alg.run(comm, &ctx).await.len()
        });
        assert!(out.results.iter().all(|&n| n == 75));
        out.makespan_ns
    };
    let d1 = ms_for(1);
    let d3 = ms_for(3);
    assert!(
        d3 > d1,
        "depth 3 ({d3}) must not beat depth 1 ({d1}) on the Paragon"
    );
}

#[test]
fn naive_independent_through_algokind_on_both_machines() {
    for machine in [Machine::paragon(6, 6), Machine::t3d(36, 2)] {
        let exp = Experiment {
            machine: &machine,
            dist: SourceDist::Random { seed: 8 },
            s: 7,
            msg_len: 512,
            kind: AlgoKind::NaiveIndependent,
        };
        assert!(
            exp.run().expect("run failed").verified,
            "NaiveIndependent failed on {}",
            machine.name
        );
    }
}

//! Fault injection on the real-threads backend: random per-message
//! delivery delays perturb the interleaving; the algorithms must still
//! produce complete, correct results (they may not rely on lock-step
//! timing, only on tags and source filters).

use stp_broadcast::prelude::*;
use stp_broadcast::runtime::{run_threads_faulty, ThreadFault};

fn check_under_fault(kind: AlgoKind, shape: MeshShape, s: usize, fault: ThreadFault) {
    let sources = SourceDist::Random { seed: 31 }.place(shape, s);
    let alg = kind.build();
    let out = run_threads_faulty(shape.p(), fault, async |comm| {
        let payload = sources
            .binary_search(&comm.rank())
            .is_ok()
            .then(|| payload_for(comm.rank(), 64));
        let ctx = StpCtx {
            shape,
            sources: &sources,
            payload: payload.as_deref(),
        };
        let set = alg.run(comm, &ctx).await;
        set.sources().collect::<Vec<_>>() == sources
            && sources
                .iter()
                .all(|&s| *set.get(s).unwrap() == payload_for(s, 64))
    });
    assert!(
        out.results.iter().all(|&ok| ok),
        "{} failed under {fault:?}",
        kind.name()
    );
}

#[test]
fn merge_algorithms_survive_random_delays() {
    let fault = ThreadFault::RandomDelay {
        max_us: 150,
        seed: 5,
    };
    for kind in [AlgoKind::BrLin, AlgoKind::BrXySource, AlgoKind::BrXyDim] {
        check_under_fault(kind, MeshShape::new(4, 4), 6, fault);
    }
}

#[test]
fn library_algorithms_survive_random_delays() {
    let fault = ThreadFault::RandomDelay {
        max_us: 150,
        seed: 6,
    };
    for kind in [
        AlgoKind::TwoStep,
        AlgoKind::PersAlltoAll,
        AlgoKind::MpiAllGather,
    ] {
        check_under_fault(kind, MeshShape::new(4, 4), 6, fault);
    }
}

#[test]
fn repositioning_and_partitioning_survive_random_delays() {
    let fault = ThreadFault::RandomDelay {
        max_us: 100,
        seed: 7,
    };
    for kind in [
        AlgoKind::ReposLin,
        AlgoKind::ReposXySource,
        AlgoKind::PartLin,
        AlgoKind::PartXySource,
    ] {
        check_under_fault(kind, MeshShape::new(4, 4), 5, fault);
    }
}

#[test]
fn repeated_runs_with_different_fault_seeds() {
    // Many interleavings of the same broadcast — a cheap schedule fuzzer.
    for seed in 0..10 {
        let fault = ThreadFault::RandomDelay { max_us: 60, seed };
        check_under_fault(AlgoKind::BrLin, MeshShape::new(3, 5), 7, fault);
    }
}

#[test]
fn odd_meshes_under_fault() {
    let fault = ThreadFault::RandomDelay {
        max_us: 80,
        seed: 11,
    };
    for kind in [AlgoKind::BrLin, AlgoKind::BrXySource, AlgoKind::PartXyDim] {
        check_under_fault(kind, MeshShape::new(5, 5), 9, fault);
    }
}

//! End-to-end tests of the fault-injection plane: seeded transient
//! drops with retry, link outages with adaptive rerouting, node
//! crashes, and the analyzer's delivery-completeness check — all on the
//! deterministic simulator, so every scenario replays byte-identically
//! from its `FaultPlan` seed.

use stp_analyzer::{analyze, AnalyzeOpts, FindingKind, Schedule};
use stp_broadcast::model::{Machine, MachineParams, MeshShape, Placement, Topology};
use stp_broadcast::runtime::{ExecMode, FaultPlan, RetryPolicy};
use stp_broadcast::stp::distribution::SourceDist;
use stp_broadcast::stp::msgset::payload_for;
use stp_broadcast::stp::runner::{record_sources_faulty, AlgoKind, Experiment};

fn experiment(machine: &Machine, kind: AlgoKind, s: usize) -> Experiment<'_> {
    Experiment {
        machine,
        dist: SourceDist::Equal,
        s,
        msg_len: 256,
        kind,
    }
}

/// The acceptance scenario: every algorithm variant completes with full
/// delivery under a transient-drop plan when retry is enabled, and the
/// fault counters account for the recovery.
#[test]
fn all_algorithms_deliver_under_transient_drops() {
    let machine = Machine::paragon(4, 4);
    let plan = FaultPlan::transient_drops(21, 1, 8, 6);
    let mut total_retransmits = 0u64;
    for &kind in AlgoKind::all() {
        let out = experiment(&machine, kind, 5)
            .run_with_faults(&plan)
            .expect("run failed");
        assert!(
            out.verified,
            "{} lost payload under a recoverable plan",
            kind.name()
        );
        assert!(
            out.stats.iter().all(|st| st.dropped == 0),
            "{} exhausted its retry budget",
            kind.name()
        );
        total_retransmits += out.stats.iter().map(|st| st.retransmits).sum::<u64>();
    }
    assert!(
        total_retransmits > 0,
        "a 1/8 drop rate across 20 algorithms must force retransmits"
    );
}

/// Same seed, same plan ⇒ byte-identical outcome; a different seed picks
/// a different (but equally deterministic) drop pattern.
#[test]
fn fault_plans_replay_from_their_seed() {
    let machine = Machine::paragon(4, 4);
    let exp = experiment(&machine, AlgoKind::BrXySource, 6);
    let plan = FaultPlan::transient_drops(3, 1, 4, 8);
    let a = exp.run_with_faults(&plan).expect("run failed");
    let b = exp.run_with_faults(&plan).expect("run failed");
    assert_eq!(a.makespan_ns, b.makespan_ns);
    assert_eq!(a.finish_ns, b.finish_ns);
    assert_eq!(a.stats, b.stats);
    assert!(a.verified && b.verified);
}

/// A permanent link outage makes messages detour: the run still
/// verifies, the detour cost is visible in the stats and the makespan,
/// and none of it is misattributed to contention.
#[test]
fn link_outage_reroutes_and_charges_detours() {
    let machine = Machine::paragon(4, 4);
    let exp = experiment(&machine, AlgoKind::TwoStep, 4);
    let clean = exp.run().expect("run failed");
    let plan = FaultPlan::parse("link=5-6@0..").expect("valid spec");
    let faulted = exp.run_with_faults(&plan).expect("run failed");
    assert!(faulted.verified, "rerouting must preserve delivery");
    let rerouted: u64 = faulted.stats.iter().map(|st| st.rerouted_hops).sum();
    let detour_ns: u64 = faulted.stats.iter().map(|st| st.detour_ns).sum();
    assert!(rerouted > 0, "traffic through link 5->6 must detour");
    assert!(detour_ns > 0, "detour hops must cost virtual time");
    // The detoured transfers may sit off the critical path, so the
    // makespan need not grow — but the timing must differ somewhere and
    // replay deterministically.
    assert_ne!(
        faulted.finish_ns, clean.finish_ns,
        "detours must perturb some rank's finish time"
    );
    let again = exp.run_with_faults(&plan).expect("run failed");
    assert_eq!(faulted.finish_ns, again.finish_ns);
    assert_eq!(faulted.makespan_ns, again.makespan_ns);
}

/// A crashed node severs all its links: messages for it become
/// unroutable, the ranks waiting on them deadlock, and the analyzer
/// pins both the lost messages and the deadlock — with the fault
/// attribution, not as a schedule bug of the algorithm.
#[test]
fn node_crash_is_diagnosed_as_lost_messages() {
    stp_analyzer::hush_expected_panics();
    let machine = Machine::paragon(4, 4);
    let sources = SourceDist::Equal.place(machine.shape, 4);
    let payload_of = |src: usize| payload_for(src, 64);
    let plan = FaultPlan::parse("crash=15@0").expect("valid spec");
    let alg = AlgoKind::BrLin.build();
    let run = record_sources_faulty(
        &machine,
        AlgoKind::BrLin.default_lib(),
        &sources,
        &payload_of,
        alg.as_ref(),
        ExecMode::Cooperative,
        Some(&plan),
    );
    assert!(run.deadlocked, "rank 15's feeders must starve");
    let sched = Schedule::from_recorded(&run, machine.p());
    assert!(
        !sched.lost_seqs().is_empty(),
        "messages into the crashed node must be recorded as lost"
    );
    let opts = AnalyzeOpts {
        faulted: true,
        ..AnalyzeOpts::default()
    };
    let analysis = analyze(&sched, &machine, &sources, &payload_of, &opts);
    let kinds: Vec<FindingKind> = analysis.findings.iter().map(|f| f.kind).collect();
    assert!(kinds.contains(&FindingKind::Deadlock));
    assert!(kinds.contains(&FindingKind::LostMessage));
}

/// Under a certain-drop plan every send burns its whole retry budget
/// and is lost; the recorded schedule accounts for exactly
/// `max_attempts` drops per message, one of them exhausted.
#[test]
fn exhausted_budget_counts_losses() {
    stp_analyzer::hush_expected_panics();
    let machine = Machine::paragon(2, 2);
    let sources = vec![0usize];
    let payload_of = |src: usize| payload_for(src, 64);
    let plan = FaultPlan {
        seed: 1,
        drop_num: 1,
        drop_den: 1,
        retry: RetryPolicy {
            max_attempts: 3,
            backoff_ns: 100,
        },
        ..FaultPlan::default()
    };
    let alg = AlgoKind::BrLin.build();
    let run = record_sources_faulty(
        &machine,
        AlgoKind::BrLin.default_lib(),
        &sources,
        &payload_of,
        alg.as_ref(),
        ExecMode::Cooperative,
        Some(&plan),
    );
    assert!(run.deadlocked, "total loss must starve the receivers");
    let sched = Schedule::from_recorded(&run, machine.p());
    assert!(!sched.sends.is_empty());
    assert_eq!(
        sched.lost_seqs().len(),
        sched.sends.len(),
        "every send must be recorded as lost"
    );
    assert_eq!(
        sched.drops.len(),
        3 * sched.sends.len(),
        "each message must burn exactly max_attempts attempts"
    );
}

/// Batch members are individually retried: under a certain-drop plan on
/// a five-port machine, every member of a `send_batch` burns its *own*
/// `max_attempts` budget — the drop hash chains on the member's seq,
/// not the batch — so the per-attempt accounting matches the
/// one-send-at-a-time case exactly.
#[test]
fn batch_members_burn_individual_retry_budgets() {
    stp_analyzer::hush_expected_panics();
    let machine = Machine::new(
        "Paragon 2x2 (5-port)",
        Topology::Mesh2D { rows: 2, cols: 2 },
        MachineParams::paragon_nx().with_ports(5),
        Placement::Identity,
        MeshShape::new(2, 2),
    );
    let sources = vec![0usize];
    let payload_of = |src: usize| payload_for(src, 64);
    let plan = FaultPlan {
        seed: 1,
        drop_num: 1,
        drop_den: 1,
        retry: RetryPolicy {
            max_attempts: 3,
            backoff_ns: 100,
        },
        ..FaultPlan::default()
    };
    // KPort_Alltoall ships the source's message to all three peers in
    // one batch — three members, one α_send.
    let alg = AlgoKind::KPortAlltoall.build();
    let run = record_sources_faulty(
        &machine,
        AlgoKind::KPortAlltoall.default_lib(),
        &sources,
        &payload_of,
        alg.as_ref(),
        ExecMode::Cooperative,
        Some(&plan),
    );
    assert!(run.deadlocked, "total loss must starve the receivers");
    let sched = Schedule::from_recorded(&run, machine.p());
    assert_eq!(sched.sends.len(), 3, "one batch, three members");
    assert_eq!(
        sched.lost_seqs().len(),
        sched.sends.len(),
        "every batch member must be recorded as lost"
    );
    assert_eq!(
        sched.drops.len(),
        3 * sched.sends.len(),
        "each batch member must burn exactly max_attempts attempts"
    );
}

/// A recoverable drop plan on the five-port machine: the k-ported
/// algorithms must retransmit dropped batch members and still verify,
/// with the recovery visible in the retransmit counters.
#[test]
fn kport_algorithms_deliver_under_transient_drops() {
    let machine = Machine::new(
        "Paragon 4x4 (5-port)",
        Topology::Mesh2D { rows: 4, cols: 4 },
        MachineParams::paragon_nx().with_ports(5),
        Placement::Identity,
        MeshShape::new(4, 4),
    );
    let plan = FaultPlan::transient_drops(21, 1, 8, 6);
    let mut total_retransmits = 0u64;
    for kind in [
        AlgoKind::KPortLin,
        AlgoKind::KPortScatter,
        AlgoKind::KPortAlltoall,
    ] {
        let out = experiment(&machine, kind, 5)
            .run_with_faults(&plan)
            .expect("run failed");
        assert!(
            out.verified,
            "{} lost payload under a recoverable plan",
            kind.name()
        );
        assert!(
            out.stats.iter().all(|st| st.dropped == 0),
            "{} exhausted its retry budget",
            kind.name()
        );
        total_retransmits += out.stats.iter().map(|st| st.retransmits).sum::<u64>();
    }
    assert!(
        total_retransmits > 0,
        "a 1/8 drop rate across batched transmits must force retransmits"
    );
}

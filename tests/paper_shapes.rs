//! Regression tests pinning the paper's *qualitative* findings on the
//! simulator — who wins, where, and by roughly what kind of margin. If
//! a model change breaks one of these, the reproduction has drifted.

use stp_broadcast::prelude::*;

fn ms(machine: &Machine, kind: AlgoKind, dist: SourceDist, s: usize, len: usize) -> f64 {
    let exp = Experiment {
        machine,
        dist,
        s,
        msg_len: len,
        kind,
    };
    let out = exp.run().expect("run failed");
    assert!(out.verified);
    out.makespan_ms()
}

/// §5.1 / Figure 3: on the Paragon the merge-based algorithms beat the
/// library-style solutions clearly at moderate-to-large s.
#[test]
fn paragon_merge_algorithms_beat_library_solutions() {
    let machine = Machine::paragon(10, 10);
    for s in [30usize, 60, 100] {
        let two_step = ms(&machine, AlgoKind::TwoStep, SourceDist::Equal, s, 4096);
        let pers = ms(&machine, AlgoKind::PersAlltoAll, SourceDist::Equal, s, 4096);
        let br_lin = ms(&machine, AlgoKind::BrLin, SourceDist::Equal, s, 4096);
        let br_xy = ms(&machine, AlgoKind::BrXySource, SourceDist::Equal, s, 4096);
        assert!(
            br_lin < two_step * 0.8,
            "s={s}: Br_Lin {br_lin} vs 2-Step {two_step}"
        );
        assert!(
            br_lin < pers * 0.8,
            "s={s}: Br_Lin {br_lin} vs PersAlltoAll {pers}"
        );
        assert!(
            br_xy < two_step * 0.8,
            "s={s}: Br_xy {br_xy} vs 2-Step {two_step}"
        );
    }
}

/// §5.1: the MPI builds lose 2–5% against NX on the Paragon.
#[test]
fn paragon_mpi_overhead_in_band() {
    let machine = Machine::paragon(10, 10);
    for kind in [AlgoKind::TwoStep, AlgoKind::BrLin, AlgoKind::BrXySource] {
        let exp = Experiment {
            machine: &machine,
            dist: SourceDist::Equal,
            s: 30,
            msg_len: 4096,
            kind,
        };
        let nx = exp
            .run_with_lib(LibraryKind::Nx)
            .expect("run failed")
            .makespan_ns as f64;
        let mpi = exp
            .run_with_lib(LibraryKind::Mpi)
            .expect("run failed")
            .makespan_ns as f64;
        let loss = (mpi - nx) / nx * 100.0;
        assert!(
            (1.0..6.0).contains(&loss),
            "{}: MPI loss {loss:.2}% out of band",
            kind.name()
        );
    }
}

/// Figure 5: PersAlltoAll is competitive on small machines (4–16
/// processors) and the worst at 256.
#[test]
fn pers_alltoall_small_machines_ok_large_machines_poor() {
    let small = Machine::paragon(2, 2);
    let pers_small = ms(
        &small,
        AlgoKind::PersAlltoAll,
        SourceDist::DiagRight,
        2,
        1024,
    );
    let two_small = ms(&small, AlgoKind::TwoStep, SourceDist::DiagRight, 2, 1024);
    assert!(pers_small <= two_small, "PersAlltoAll should win on a 2x2");

    let large = Machine::paragon(16, 16);
    let pers_large = ms(
        &large,
        AlgoKind::PersAlltoAll,
        SourceDist::DiagRight,
        16,
        1024,
    );
    let br_large = ms(&large, AlgoKind::BrLin, SourceDist::DiagRight, 16, 1024);
    assert!(
        pers_large > 3.0 * br_large,
        "PersAlltoAll must collapse at p=256"
    );
}

/// Figure 6: Br_xy_source treats row/column/equal/diagonal the same and
/// degrades on square block and cross; Br_xy_dim spikes on the row
/// distribution (wrong dimension first).
#[test]
fn distribution_effects_on_xy_algorithms() {
    let machine = Machine::paragon(10, 10);
    let base = ms(&machine, AlgoKind::BrXySource, SourceDist::Column, 30, 2048);
    for d in [SourceDist::Row, SourceDist::Equal, SourceDist::DiagRight] {
        let t = ms(&machine, AlgoKind::BrXySource, d.clone(), 30, 2048);
        assert!(
            (t - base).abs() / base < 0.05,
            "{}: Br_xy_source should be flat across easy distributions",
            d.name()
        );
    }
    let sq = ms(
        &machine,
        AlgoKind::BrXySource,
        SourceDist::SquareBlock,
        30,
        2048,
    );
    let cr = ms(&machine, AlgoKind::BrXySource, SourceDist::Cross, 30, 2048);
    assert!(sq > base * 1.05, "square block must degrade Br_xy_source");
    assert!(cr > base * 1.10, "cross must degrade Br_xy_source");

    let dim_row = ms(&machine, AlgoKind::BrXyDim, SourceDist::Row, 30, 2048);
    let dim_col = ms(&machine, AlgoKind::BrXyDim, SourceDist::Column, 30, 2048);
    assert!(
        dim_row > dim_col * 1.2,
        "Br_xy_dim must spike on the row distribution"
    );
}

/// Figure 7: with total message volume fixed, more sources is faster.
#[test]
fn fixed_total_more_sources_faster() {
    let machine = Machine::paragon(10, 10);
    let total = 80 * 1024;
    for kind in [AlgoKind::BrLin, AlgoKind::BrXySource] {
        let few = ms(&machine, kind, SourceDist::DiagRight, 5, total / 5);
        let many = ms(&machine, kind, SourceDist::DiagRight, 80, total / 80);
        assert!(
            many < few,
            "{}: s=80 ({many}) should beat s=5 ({few})",
            kind.name()
        );
    }
}

/// §5.2 / Figure 9: repositioning pays on the cross distribution at
/// moderate s, and never catastrophically loses on near-ideal inputs.
#[test]
fn repositioning_pays_on_cross() {
    let machine = Machine::paragon(16, 16);
    let plain = ms(
        &machine,
        AlgoKind::BrXySource,
        SourceDist::Cross,
        75,
        6 * 1024,
    );
    let repos = ms(
        &machine,
        AlgoKind::ReposXySource,
        SourceDist::Cross,
        75,
        6 * 1024,
    );
    assert!(
        repos < plain,
        "repositioning must win on cross at s=75 (got {repos} vs {plain})"
    );
}

/// §5.2: partitioning hardly ever beats repositioning alone — the final
/// exchange dominates.
#[test]
fn partitioning_never_pays_on_paragon() {
    let machine = Machine::paragon(16, 16);
    for s in [50usize, 100, 192] {
        let repos = ms(
            &machine,
            AlgoKind::ReposXySource,
            SourceDist::Cross,
            s,
            6 * 1024,
        );
        let part = ms(
            &machine,
            AlgoKind::PartXySource,
            SourceDist::Cross,
            s,
            6 * 1024,
        );
        assert!(
            part > repos,
            "s={s}: partitioning ({part}) must not beat repositioning ({repos})"
        );
    }
}

/// §5.3 / Figure 13: the ranking flips on the T3D — MPI_Alltoall beats
/// both MPI_AllGather and Br_Lin at moderate-to-large s.
#[test]
fn t3d_ranking_flips() {
    let machine = Machine::t3d(128, 42);
    for s in [20usize, 40, 96, 128] {
        let alltoall = ms(&machine, AlgoKind::MpiAlltoall, SourceDist::Equal, s, 4096);
        let allgather = ms(&machine, AlgoKind::MpiAllGather, SourceDist::Equal, s, 4096);
        let br_lin = ms(&machine, AlgoKind::BrLin, SourceDist::Equal, s, 4096);
        assert!(
            alltoall < allgather,
            "s={s}: Alltoall must beat AllGather on the T3D"
        );
        assert!(
            alltoall < br_lin,
            "s={s}: Alltoall must beat Br_Lin on the T3D"
        );
    }
}

/// §5.3: spreading a fixed total volume over more sources is faster on
/// the T3D too (for the wait-free algorithm).
#[test]
fn t3d_more_sources_faster_alltoall() {
    let machine = Machine::t3d(128, 42);
    let total = 128 * 1024;
    let few = ms(
        &machine,
        AlgoKind::MpiAlltoall,
        SourceDist::Equal,
        4,
        total / 4,
    );
    let many = ms(
        &machine,
        AlgoKind::MpiAlltoall,
        SourceDist::Equal,
        64,
        total / 64,
    );
    assert!(
        many < few,
        "T3D Alltoall: s=64 ({many}) should beat s=4 ({few})"
    );
}

/// Figure 2 (measured): the key per-algorithm parameter shapes.
#[test]
fn figure2_parameter_shapes() {
    let machine = Machine::paragon(16, 16);
    let s = 24;
    let run = |kind: AlgoKind| {
        let exp = Experiment {
            machine: &machine,
            dist: SourceDist::Equal,
            s,
            msg_len: 1024,
            kind,
        };
        exp.run().expect("run failed")
    };
    let two_step = run(AlgoKind::TwoStep);
    let pers = run(AlgoKind::PersAlltoAll);
    let br_lin = run(AlgoKind::BrLin);
    let p = machine.p() as u64;

    // 2-Step: O(s) congestion at the root.
    let c2 = two_step
        .stats
        .iter()
        .map(|st| st.congestion())
        .max()
        .unwrap();
    assert!(c2 >= s as u64 - 1, "2-Step congestion must be ~s, got {c2}");

    // PersAlltoAll: O(1) congestion, O(p) total operations.
    let cp = pers.stats.iter().map(|st| st.congestion()).max().unwrap();
    assert!(cp <= 3, "PersAlltoAll congestion must be O(1), got {cp}");
    let opsp = pers.stats.iter().map(|st| st.total_ops()).max().unwrap();
    assert!(opsp >= p / 2, "PersAlltoAll ops must be O(p), got {opsp}");

    // Br_Lin: O(log p) operations per rank.
    let opsb = br_lin.stats.iter().map(|st| st.total_ops()).max().unwrap();
    assert!(
        opsb <= 4 * (p.ilog2() as u64 + 1),
        "Br_Lin ops must be O(log p), got {opsb}"
    );
}

/// §2 (text): uncoordinated independent broadcasts perform poorly on
/// the Paragon against the merge-based algorithms.
#[test]
fn naive_independent_loses_on_paragon() {
    let machine = Machine::paragon(10, 10);
    for s in [15usize, 30, 100] {
        let naive = ms(
            &machine,
            AlgoKind::NaiveIndependent,
            SourceDist::Equal,
            s,
            4096,
        );
        let merged = ms(&machine, AlgoKind::BrXySource, SourceDist::Equal, s, 4096);
        assert!(
            naive > merged * 1.5,
            "s={s}: uncoordinated broadcasts ({naive}) must lose clearly to Br_xy_source ({merged})"
        );
    }
}

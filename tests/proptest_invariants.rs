//! Property-based tests over the core invariants (proptest).

use proptest::prelude::*;
use stp_broadcast::model::Topology;
use stp_broadcast::prelude::*;
use stp_broadcast::stp::algorithms::repos::repositioning_moves;
use stp_broadcast::stp::ideal::{ideal_line_positions, ideal_rows};
use stp_broadcast::stp::pattern::{br_lin_schedule, simulate_coverage};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Br_Lin's schedule always achieves full coverage: every position
    /// ends up with every source position's messages.
    #[test]
    fn br_lin_schedule_full_coverage(n in 1usize..48, mask in any::<u64>()) {
        let has: Vec<bool> = (0..n).map(|i| mask >> (i % 64) & 1 == 1).collect();
        if !has.iter().any(|&b| b) {
            return Ok(());
        }
        let want: std::collections::BTreeSet<usize> =
            has.iter().enumerate().filter(|(_, &h)| h).map(|(i, _)| i).collect();
        for (pos, got) in simulate_coverage(&has).iter().enumerate() {
            prop_assert_eq!(got, &want, "position {} incomplete", pos);
        }
    }

    /// Schedule depth is exactly ⌈log₂ n⌉ and per-level ops stay ≤ 2.
    #[test]
    fn br_lin_schedule_depth_and_degree(n in 1usize..200) {
        let has = vec![true; n];
        let sched = br_lin_schedule(&has);
        let want_levels = if n <= 1 { 0 } else { (n - 1).ilog2() as usize + 1 };
        prop_assert_eq!(sched.levels(), want_levels);
        for level in &sched.ops {
            for ops in level {
                prop_assert!(ops.len() <= 2);
            }
        }
    }

    /// Every named distribution places exactly s sorted, distinct,
    /// in-range sources on every mesh.
    #[test]
    fn distributions_well_formed(rows in 1usize..12, cols in 1usize..12, s_frac in 0.01f64..1.0) {
        let shape = MeshShape::new(rows, cols);
        let p = shape.p();
        let s = ((p as f64 * s_frac).ceil() as usize).clamp(1, p);
        for dist in [
            SourceDist::Row, SourceDist::Column, SourceDist::Equal,
            SourceDist::DiagRight, SourceDist::DiagLeft, SourceDist::Band,
            SourceDist::Cross, SourceDist::SquareBlock,
            SourceDist::Random { seed: 9 },
        ] {
            let placed = dist.place(shape, s);
            prop_assert_eq!(placed.len(), s, "{} on {}x{}", dist.name(), rows, cols);
            prop_assert!(placed.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(placed.iter().all(|&r| r < p));
        }
    }

    /// The repositioning permutation is injective and a partial
    /// permutation (no rank both keeps and receives).
    #[test]
    fn repositioning_is_partial_permutation(rows in 2usize..10, cols in 2usize..10, s_frac in 0.05f64..1.0) {
        let shape = MeshShape::new(rows, cols);
        let p = shape.p();
        let s = ((p as f64 * s_frac) as usize).clamp(1, p);
        let sources = SourceDist::SquareBlock.place(shape, s);
        let targets = ideal_rows(shape, s);
        prop_assert_eq!(targets.len(), s);
        prop_assert!(targets.windows(2).all(|w| w[0] < w[1]));
        let moves = repositioning_moves(&sources, &targets);
        let mut from: Vec<usize> = moves.iter().map(|&(f, _)| f).collect();
        let mut to: Vec<usize> = moves.iter().map(|&(_, t)| t).collect();
        from.sort_unstable(); from.dedup();
        to.sort_unstable(); to.dedup();
        prop_assert_eq!(from.len(), moves.len());
        prop_assert_eq!(to.len(), moves.len());
    }

    /// Ideal line positions: correct count, sorted, within range, and
    /// never worse at doubling than the naive evenly-spaced choice.
    #[test]
    fn ideal_line_positions_valid(n in 1usize..24, k_frac in 0.0f64..1.0) {
        let k = ((n as f64 * k_frac) as usize).min(n);
        let pos = ideal_line_positions(n, k);
        prop_assert_eq!(pos.len(), k);
        prop_assert!(pos.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(pos.iter().all(|&x| x < n));
    }

    /// Dimension-ordered routes are minimal, contiguous and in-range on
    /// every topology.
    #[test]
    fn routes_minimal_and_contiguous(
        rows in 1usize..8, cols in 1usize..8,
        dx in 1usize..6, dy in 1usize..6, dz in 1usize..4,
        from_frac in 0.0f64..1.0, to_frac in 0.0f64..1.0,
    ) {
        for topo in [
            Topology::Mesh2D { rows, cols },
            Topology::Torus3D { dx, dy, dz },
            Topology::Linear { n: rows * cols },
        ] {
            let n = topo.num_nodes();
            let u = ((n as f64 * from_frac) as usize).min(n - 1);
            let v = ((n as f64 * to_frac) as usize).min(n - 1);
            let route = topo.route(u, v);
            prop_assert_eq!(route.len(), topo.distance(u, v));
            let mut cur = u;
            for link in &route {
                prop_assert_eq!(link.from, cur);
                prop_assert!(topo.neighbors(link.from).contains(&link.to));
                cur = link.to;
            }
            prop_assert_eq!(cur, v);
        }
    }

    /// MessageSet wire format round-trips arbitrary contents.
    #[test]
    fn msgset_roundtrip(entries in proptest::collection::btree_map(0u32..500, proptest::collection::vec(any::<u8>(), 0..64), 0..12)) {
        let mut set = MessageSet::new();
        for (src, data) in &entries {
            set.insert(*src as usize, data);
        }
        let back = MessageSet::from_bytes(&set.to_bytes()).unwrap();
        prop_assert_eq!(back, set);
    }

    /// MessageSet::from_bytes never panics on arbitrary garbage.
    #[test]
    fn msgset_parser_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = MessageSet::from_bytes(&bytes);
    }

    /// The rope wire path is byte-identical to the flat one: same
    /// length (virtual send costs depend on it) and same bytes, and it
    /// round-trips through the zero-copy parser.
    #[test]
    fn msgset_rope_wire_matches_flat(entries in proptest::collection::btree_map(0u32..500, proptest::collection::vec(any::<u8>(), 0..64), 0..12)) {
        let mut set = MessageSet::new();
        for (src, data) in &entries {
            set.insert(*src as usize, data);
        }
        let flat = set.to_bytes();
        let rope = set.to_payload();
        prop_assert_eq!(rope.len(), flat.len());
        prop_assert_eq!(rope.len(), set.wire_bytes());
        prop_assert_eq!(rope.to_vec(), flat);
        let back = MessageSet::from_payload(&rope).unwrap();
        prop_assert_eq!(back, set);
    }

    /// Merging message sets built from rope entries behaves like a map
    /// union, regardless of how the entries were split between the two
    /// sides, and the merged set serialises identically to one built
    /// flat from the union.
    #[test]
    fn msgset_rope_merge_is_union(
        entries in proptest::collection::btree_map(0u32..100, proptest::collection::vec(any::<u8>(), 0..48), 0..16),
        split_mask in any::<u16>(),
    ) {
        let mut left = MessageSet::new();
        let mut right = MessageSet::new();
        for (i, (src, data)) in entries.iter().enumerate() {
            let rope = mpp_sim::Payload::from_slice(data);
            if split_mask >> (i % 16) & 1 == 0 {
                left.insert_payload(*src as usize, rope);
            } else {
                right.insert_payload(*src as usize, rope);
            }
        }
        left.merge(right);
        let mut flat = MessageSet::new();
        for (src, data) in &entries {
            flat.insert(*src as usize, data);
        }
        prop_assert_eq!(&left, &flat);
        prop_assert_eq!(left.to_payload().to_vec(), flat.to_bytes());
    }

    /// A payload rope assembled from arbitrary fragments is
    /// indistinguishable from the flat concatenation: same length,
    /// same bytes, and any slice of it equals the flat slice.
    #[test]
    fn payload_rope_equals_flat(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 0..8),
        a_frac in 0.0f64..1.0, b_frac in 0.0f64..1.0,
    ) {
        let mut rope = mpp_sim::Payload::new();
        let mut flat = Vec::new();
        for chunk in &chunks {
            rope.append(mpp_sim::Payload::from_slice(chunk));
            flat.extend_from_slice(chunk);
        }
        prop_assert_eq!(rope.len(), flat.len());
        prop_assert!(rope == flat.as_slice());
        let a = (flat.len() as f64 * a_frac) as usize;
        let b = (flat.len() as f64 * b_frac) as usize;
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(rope.slice(lo, hi) == flat[lo..hi]);
        // Sharing structure: cloning and re-appending the rope onto
        // itself doubles the length without touching payload bytes
        // (the zero-copy claim itself is asserted in payload.rs unit
        // tests — the global counters race across test threads here).
        let mut doubled = rope.clone();
        doubled.push_payload(&rope);
        prop_assert_eq!(doubled.len(), 2 * flat.len());
        prop_assert_eq!(doubled.slice(flat.len(), 2 * flat.len()).to_vec(), flat);
    }
}

proptest! {
    // Expensive end-to-end properties: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end: any algorithm, any explicit random source set, on a
    /// random small mesh — every rank verifies.
    #[test]
    fn any_algorithm_any_sources_verifies(
        rows in 2usize..5, cols in 2usize..6,
        seed in any::<u64>(),
        kind_idx in 0usize..13,
        len in 0usize..200,
    ) {
        let machine = Machine::paragon(rows, cols);
        let p = machine.p();
        let s = (seed % p as u64).max(1) as usize;
        let kind = AlgoKind::all()[kind_idx % AlgoKind::all().len()];
        let exp = Experiment {
            machine: &machine,
            dist: SourceDist::Random { seed },
            s,
            msg_len: len,
            kind,
        };
        let out = exp.run().expect("run failed");
        prop_assert!(out.verified, "{} failed (p={}, s={}, len={})", kind.name(), p, s, len);
    }
}

//! Kernel stress tests: randomized (but matched) communication patterns
//! exercise the simulator's matching, blocking, and scheduling logic far
//! outside the algorithms' regular patterns.

use proptest::prelude::*;
use stp_broadcast::prelude::*;

/// A randomly generated, deadlock-free communication script:
/// `sends[i]` = list of `(dst, tag, len)` issued by rank `i`, and every
/// rank knows how many messages to expect in total (wildcard receives).
#[derive(Debug, Clone)]
struct Script {
    p: usize,
    sends: Vec<Vec<(usize, u32, usize)>>,
}

impl Script {
    fn expected(&self, rank: usize) -> usize {
        self.sends
            .iter()
            .flatten()
            .filter(|&&(dst, _, _)| dst == rank)
            .count()
    }
}

fn script_strategy() -> impl Strategy<Value = Script> {
    (2usize..8).prop_flat_map(|p| {
        let sends = proptest::collection::vec(
            proptest::collection::vec((0..p, 0u32..4, 0usize..64), 0..6),
            p,
        );
        sends.prop_map(move |sends| Script { p, sends })
    })
}

fn run_script_sim(script: &Script) -> (Vec<u64>, Vec<u64>) {
    let machine = Machine::paragon(1, script.p);
    let out = run_simulated(&machine, LibraryKind::Nx, async |comm| {
        let me = comm.rank();
        for &(dst, tag, len) in &script.sends[me] {
            comm.send(dst, tag, &vec![me as u8; len]);
        }
        let mut received = 0u64;
        for _ in 0..script.expected(me) {
            let m = comm.recv(None, None).await;
            assert!(m.src < comm.size());
            received += m.data.len() as u64;
        }
        received
    });
    (out.results, out.finish_ns)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Matched random scripts complete (no deadlock, all bytes arrive)
    /// and are deterministic.
    #[test]
    fn random_matched_scripts_complete_and_deterministic(script in script_strategy()) {
        let (bytes_a, times_a) = run_script_sim(&script);
        let (bytes_b, times_b) = run_script_sim(&script);
        prop_assert_eq!(&bytes_a, &bytes_b);
        prop_assert_eq!(&times_a, &times_b);
        // Conservation: total received bytes == total sent bytes.
        let sent: u64 = script
            .sends
            .iter()
            .flatten()
            .map(|&(_, _, len)| len as u64)
            .sum();
        let received: u64 = bytes_a.iter().sum();
        prop_assert_eq!(sent, received);
    }

    /// The same scripts complete on the threads backend too.
    #[test]
    fn random_matched_scripts_complete_on_threads(script in script_strategy()) {
        let out = run_threads(script.p, async |comm| {
            let me = comm.rank();
            for &(dst, tag, len) in &script.sends[me] {
                comm.send(dst, tag, &vec![me as u8; len]);
            }
            let mut received = 0u64;
            for _ in 0..script.expected(me) {
                received += comm.recv(None, None).await.data.len() as u64;
            }
            received
        });
        let sent: u64 =
            script.sends.iter().flatten().map(|&(_, _, len)| len as u64).sum();
        prop_assert_eq!(out.results.iter().sum::<u64>(), sent);
    }
}

#[test]
fn wildcard_and_filtered_receives_interleave() {
    // One rank mixes wildcard, source-filtered, and tag-filtered
    // receives against out-of-order senders.
    let machine = Machine::paragon(1, 4);
    let out = run_simulated(&machine, LibraryKind::Nx, async |comm| {
        match comm.rank() {
            1 => {
                comm.send(0, 7, b"from1-tag7");
                comm.send(0, 8, b"from1-tag8");
            }
            2 => comm.send(0, 7, b"from2-tag7"),
            3 => comm.send(0, 9, b"from3-tag9"),
            0 => {
                let a = comm.recv(Some(3), None).await; // only rank 3
                assert_eq!(a.data, b"from3-tag9");
                let b = comm.recv(None, Some(8)).await; // only tag 8
                assert_eq!(b.data, b"from1-tag8");
                let c = comm.recv(Some(1), Some(7)).await;
                assert_eq!(c.data, b"from1-tag7");
                let d = comm.recv(None, None).await;
                assert_eq!(d.data, b"from2-tag7");
            }
            _ => unreachable!(),
        }
        true
    });
    assert!(out.results.iter().all(|&ok| ok));
}

#[test]
fn self_sends_work_on_both_backends() {
    let machine = Machine::paragon(1, 2);
    let sim = run_simulated(&machine, LibraryKind::Nx, async |comm| {
        comm.send(comm.rank(), 0, b"self");
        comm.recv(Some(comm.rank()), Some(0)).await.data
    });
    assert!(sim.results.iter().all(|d| d == b"self"));

    let thr = run_threads(2, async |comm| {
        comm.send(comm.rank(), 0, b"self");
        comm.recv(Some(comm.rank()), Some(0)).await.data
    });
    assert!(thr.results.iter().all(|d| d == b"self"));
}

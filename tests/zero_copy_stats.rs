//! Regression coverage for the zero-copy message path.
//!
//! Two layers of accounting guard the optimisation:
//!
//! * per-rank [`CommStats::bytes_copied`] / [`CommStats::allocs`] count
//!   host-side payload copies made by the communication layer — the
//!   legacy `send(&[u8])` path pays one per send, `send_payload` pays
//!   none;
//! * the process-global [`sim::copy_metrics`] counters count every real
//!   byte copy inside `Payload` itself, so a whole experiment can be
//!   audited against the virtual traffic it generated.
//!
//! The global counters are process-wide atomics and the tests in this
//! binary run concurrently, so every test serialises on one lock.

use std::sync::Mutex;

use stp_broadcast::prelude::*;
use stp_broadcast::sim::{self, Payload};

static COPY_METRICS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    COPY_METRICS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn legacy_flat_send_records_copies() {
    let _g = lock();
    let machine = Machine::paragon(1, 2);
    let out = run_simulated(&machine, LibraryKind::Nx, async |comm| {
        if comm.rank() == 0 {
            comm.send(1, 7, &[0xAB; 4096]);
        } else {
            assert_eq!(comm.recv(Some(0), Some(7)).await.data.len(), 4096);
        }
    });
    assert!(
        out.stats[0].bytes_copied >= 4096,
        "flat send must be charged a payload copy"
    );
    assert!(
        out.stats[0].allocs >= 1,
        "flat send must be charged a buffer allocation"
    );
}

#[test]
fn rope_send_records_no_copies() {
    let _g = lock();
    let machine = Machine::paragon(1, 2);
    let out = run_simulated(&machine, LibraryKind::Nx, async |comm| {
        if comm.rank() == 0 {
            // One upfront copy to build the rope; the eight sends then
            // share it by reference.
            let payload = Payload::from_slice(&[0xCD; 4096]);
            for tag in 0..8u32 {
                comm.send_payload(1, tag, payload.clone());
            }
        } else {
            for tag in 0..8u32 {
                assert_eq!(comm.recv(Some(0), Some(tag)).await.data.len(), 4096);
            }
        }
    });
    assert_eq!(out.stats[0].bytes_copied, 0, "send_payload must not copy");
    assert_eq!(out.stats[0].allocs, 0, "send_payload must not allocate");
}

#[test]
fn converted_algorithms_send_zero_copy() {
    let _g = lock();
    let machine = Machine::paragon(8, 8);
    for kind in [AlgoKind::TwoStep, AlgoKind::PersAlltoAll, AlgoKind::BrLin] {
        let exp = Experiment {
            machine: &machine,
            dist: SourceDist::Equal,
            s: 16,
            msg_len: 2048,
            kind,
        };
        let out = exp.run().expect("run failed");
        assert!(out.verified, "{} failed verification", kind.name());
        let copied: u64 = out.stats.iter().map(|s| s.bytes_copied).sum();
        let moved: u64 = out.stats.iter().map(|s| s.total_bytes()).sum();
        assert!(moved > 0, "{} moved no bytes?", kind.name());
        assert_eq!(
            copied,
            0,
            "{} paid {copied} comm-layer copy bytes ({moved} bytes of traffic)",
            kind.name()
        );
    }
}

#[test]
fn rope_path_copies_small_fraction_of_traffic() {
    let _g = lock();
    let machine = Machine::paragon(8, 8);
    let exp = Experiment {
        machine: &machine,
        dist: SourceDist::Equal,
        s: 16,
        msg_len: 4096,
        kind: AlgoKind::BrLin,
    };
    let before = sim::copy_metrics();
    let out = exp.run().expect("run failed");
    let delta = sim::copy_metrics().since(&before);
    assert!(out.verified);
    let moved: u64 = out.stats.iter().map(|s| s.total_bytes()).sum();
    // Combining in Br_Lin forwards snapshots of growing message sets;
    // with flat buffers every hop would re-copy the full set, so the
    // physical copy volume would be >= the virtual traffic. The rope
    // path pays only payload construction + framing headers.
    assert!(
        delta.bytes_copied < moved / 4,
        "rope path copied {} of {} traffic bytes — zero-copy regression",
        delta.bytes_copied,
        moved
    );
}
